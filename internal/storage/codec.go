package storage

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"repro/internal/chronon"
	"repro/internal/core"
	"repro/internal/lifespan"
	"repro/internal/schema"
	"repro/internal/tfunc"
	"repro/internal/value"
)

// magic and version identify the file format.
const (
	magic         = 0x4852444d // "HRDM"
	formatVersion = 1
	// storeVersion2 is the store-file header version that carries the
	// WAL sequence number the snapshot is consistent through; the
	// per-relation record format is unchanged (formatVersion). Load
	// still accepts version-1 store files (LSN 0).
	storeVersion2 = 2
	// maxCount bounds every length field read from untrusted input, so a
	// corrupted count cannot trigger a giant allocation.
	maxCount = 1 << 24
)

// Encode serializes a historical relation (scheme and tuples) to w,
// reading the tuple state through its own core.Pin so a concurrent
// writer can never yield a torn record.
func Encode(w io.Writer, r *core.Relation) error {
	_, vers := core.Pin(r)
	bw := &errWriter{w: w}
	encodePinned(bw, vers[0])
	return bw.err
}

// encodePinned writes one relation record from a pinned version — the
// only tuple-read path the binary writer has.
func encodePinned(bw *errWriter, v core.RelVersion) {
	bw.u32(magic)
	bw.u32(formatVersion)
	s := v.Rel().Scheme()
	encodeScheme(bw, s)
	tuples := v.Tuples()
	bw.u32(uint32(len(tuples)))
	for _, t := range tuples {
		encodeLifespan(bw, t.Lifespan())
		for _, a := range s.Attrs {
			encodeFunc(bw, t.Value(a.Name))
		}
	}
}

// EncodeBytes is Encode into a fresh buffer.
func EncodeBytes(r *core.Relation) ([]byte, error) {
	var buf bytes.Buffer
	if err := Encode(&buf, r); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// Decode reads a historical relation previously written by Encode.
func Decode(rd io.Reader) (*core.Relation, error) {
	br := &errReader{r: rd}
	if m := br.u32(); br.err == nil && m != magic {
		return nil, fmt.Errorf("storage: bad magic %#x", m)
	}
	if v := br.u32(); br.err == nil && v != formatVersion {
		return nil, fmt.Errorf("storage: unsupported version %d", v)
	}
	s, err := decodeScheme(br)
	if err != nil {
		return nil, err
	}
	out := core.NewRelation(s)
	n := br.count()
	if br.err != nil {
		return nil, br.err
	}
	// Decode every tuple first and load them as one batch: a single
	// version bump and one coalesced index-maintenance notification
	// instead of n single-tuple rounds — the storage layer's bulk-load
	// path. Capacity is bounded (not trusted from the count) so a
	// corrupt header cannot trigger a giant allocation.
	ts := make([]*core.Tuple, 0, int(min(n, 1024)))
	for i := uint32(0); i < n; i++ {
		ls := decodeLifespan(br)
		vals := make(map[string]tfunc.Func, len(s.Attrs))
		for _, a := range s.Attrs {
			vals[a.Name] = decodeFunc(br)
		}
		if br.err != nil {
			return nil, br.err
		}
		t, err := core.NewTuple(s, ls, vals)
		if err != nil {
			return nil, fmt.Errorf("storage: decode tuple %d: %w", i, err)
		}
		ts = append(ts, t)
	}
	if err := out.InsertBatch(ts); err != nil {
		return nil, err
	}
	return out, br.err
}

// DecodeBytes is Decode from a byte slice.
func DecodeBytes(b []byte) (*core.Relation, error) {
	return Decode(bytes.NewReader(b))
}

func encodeScheme(w *errWriter, s *schema.Scheme) {
	w.str(s.Name)
	w.u32(uint32(len(s.Key)))
	for _, k := range s.Key {
		w.str(k)
	}
	w.u32(uint32(len(s.Attrs)))
	for _, a := range s.Attrs {
		w.str(a.Name)
		w.u8(uint8(a.Domain.Kind))
		w.str(a.Domain.Name)
		w.str(a.Interp)
		encodeLifespan(w, a.Lifespan)
	}
}

func decodeScheme(r *errReader) (*schema.Scheme, error) {
	name := r.str()
	nk := r.count()
	if r.err != nil {
		return nil, r.err
	}
	key := make([]string, nk)
	for i := range key {
		key[i] = r.str()
	}
	na := r.count()
	if r.err != nil {
		return nil, r.err
	}
	attrs := make([]schema.Attribute, na)
	for i := range attrs {
		attrs[i].Name = r.str()
		attrs[i].Domain.Kind = value.Kind(r.u8())
		attrs[i].Domain.Name = r.str()
		attrs[i].Interp = r.str()
		attrs[i].Lifespan = decodeLifespan(r)
	}
	if r.err != nil {
		return nil, r.err
	}
	return schema.New(name, key, attrs...)
}

func encodeLifespan(w *errWriter, ls lifespan.Lifespan) {
	ivs := ls.Intervals()
	w.u32(uint32(len(ivs)))
	for _, iv := range ivs {
		w.i64(int64(iv.Lo))
		w.i64(int64(iv.Hi))
	}
}

func decodeLifespan(r *errReader) lifespan.Lifespan {
	n := r.count()
	if r.err != nil || n == 0 {
		return lifespan.Empty()
	}
	ivs := make([]chronon.Interval, 0, n)
	for i := uint32(0); i < n; i++ {
		lo := chronon.Time(r.i64())
		hi := chronon.Time(r.i64())
		ivs = append(ivs, chronon.NewInterval(lo, hi))
	}
	return lifespan.New(ivs...)
}

func encodeFunc(w *errWriter, f tfunc.Func) {
	w.u32(uint32(f.NumSteps()))
	f.Steps(func(iv chronon.Interval, v value.Value) bool {
		w.i64(int64(iv.Lo))
		w.i64(int64(iv.Hi))
		encodeValue(w, v)
		return true
	})
}

func decodeFunc(r *errReader) tfunc.Func {
	n := r.count()
	var b tfunc.Builder
	for i := uint32(0); i < n && r.err == nil; i++ {
		lo := chronon.Time(r.i64())
		hi := chronon.Time(r.i64())
		v := decodeValue(r)
		if r.err == nil {
			b.Set(lo, hi, v)
		}
	}
	return b.Build()
}

func encodeValue(w *errWriter, v value.Value) {
	w.u8(uint8(v.Kind()))
	switch v.Kind() {
	case value.KindInt:
		w.i64(v.AsInt())
	case value.KindFloat:
		w.u64(math.Float64bits(v.AsFloat()))
	case value.KindString:
		w.str(v.AsString())
	case value.KindBool:
		if v.AsBool() {
			w.u8(1)
		} else {
			w.u8(0)
		}
	case value.KindTime:
		w.i64(int64(v.AsTime()))
	default:
		w.fail(fmt.Errorf("storage: cannot encode invalid value"))
	}
}

func decodeValue(r *errReader) value.Value {
	switch value.Kind(r.u8()) {
	case value.KindInt:
		return value.Int(r.i64())
	case value.KindFloat:
		return value.Float(math.Float64frombits(r.u64()))
	case value.KindString:
		return value.String_(r.str())
	case value.KindBool:
		return value.Bool(r.u8() != 0)
	case value.KindTime:
		return value.TimeVal(chronon.Time(r.i64()))
	default:
		r.fail(fmt.Errorf("storage: invalid value kind"))
		return value.Value{}
	}
}

// errWriter folds write errors so encoding code stays linear.
type errWriter struct {
	w   io.Writer
	err error
	buf [8]byte
}

func (w *errWriter) fail(err error) {
	if w.err == nil {
		w.err = err
	}
}

func (w *errWriter) write(b []byte) {
	if w.err != nil {
		return
	}
	_, err := w.w.Write(b)
	w.fail(err)
}

func (w *errWriter) u8(v uint8) { w.buf[0] = v; w.write(w.buf[:1]) }
func (w *errWriter) u32(v uint32) {
	binary.LittleEndian.PutUint32(w.buf[:4], v)
	w.write(w.buf[:4])
}
func (w *errWriter) u64(v uint64) {
	binary.LittleEndian.PutUint64(w.buf[:8], v)
	w.write(w.buf[:8])
}
func (w *errWriter) i64(v int64) { w.u64(uint64(v)) }
func (w *errWriter) str(s string) {
	w.u32(uint32(len(s)))
	w.write([]byte(s))
}

// errReader mirrors errWriter for decoding.
type errReader struct {
	r   io.Reader
	err error
	buf [8]byte
}

func (r *errReader) fail(err error) {
	if r.err == nil {
		r.err = err
	}
}

func (r *errReader) read(b []byte) {
	if r.err != nil {
		return
	}
	_, err := io.ReadFull(r.r, b)
	r.fail(err)
}

func (r *errReader) u8() uint8 {
	r.read(r.buf[:1])
	return r.buf[0]
}

func (r *errReader) u32() uint32 {
	r.read(r.buf[:4])
	if r.err != nil {
		return 0
	}
	return binary.LittleEndian.Uint32(r.buf[:4])
}

func (r *errReader) u64() uint64 {
	r.read(r.buf[:8])
	if r.err != nil {
		return 0
	}
	return binary.LittleEndian.Uint64(r.buf[:8])
}

func (r *errReader) i64() int64 { return int64(r.u64()) }

// count reads a length field, rejecting values that could only come from
// corruption.
func (r *errReader) count() uint32 {
	n := r.u32()
	if r.err == nil && n > maxCount {
		r.fail(fmt.Errorf("storage: count %d exceeds limit", n))
		return 0
	}
	return n
}

func (r *errReader) str() string {
	n := r.u32()
	if r.err != nil {
		return ""
	}
	if n > 1<<24 {
		r.fail(fmt.Errorf("storage: string length %d too large", n))
		return ""
	}
	b := make([]byte, n)
	r.read(b)
	return string(b)
}
