// Package storage implements the physical level of HRDM's three-level
// architecture (paper Figure 9: representation / model / physical).
//
// Historical relations are serialized to a compact binary format that
// stores each attribute value in its representation-level form — the
// interval-coalesced steps of tfunc.Func, so a salary constant for a
// thousand chronons costs one step — and are read back losslessly. The
// same byte counts drive the storage-footprint experiment (E10), where
// HRDM competes with the cube and tuple-timestamping representations.
//
// A human-editable text format (text.go) mirrors the model for
// authoring databases by hand. Both loaders publish through the bulk
// write paths of internal/core: a relation's tuples arrive as one
// batch, and a multi-relation text load (or a Store.MergeStore of one
// store into another) commits as a single core.WriteGroup — one
// atomic, epoch-consistent publication for the whole file.
package storage
