package storage

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/wal"
)

// Durable-store metrics: checkpoint counts and latency, and what
// recovery actually replayed — the numbers that tell an operator how
// much work a crash would redo.
var (
	mCheckpointCount = obs.Default.Counter("storage.checkpoint.count")
	mCheckpointNs    = obs.Default.Histogram("storage.checkpoint.ns")
	mRecoverGroups   = obs.Default.Counter("storage.recover.groups")
	mRecoverTuples   = obs.Default.Counter("storage.recover.tuples")
)

// Fixed file names inside a durable store directory.
const (
	snapshotFile = "store.hrdm"
	walFile      = "wal.log"
)

// durableByRel maps a published relation to the durable store whose
// WAL logs its write groups. The commit hook consults it on every
// group commit; entries are added by Put/OpenDurable/MergeStore and
// removed by Close.
var durableByRel sync.Map // *core.Relation → *Store

// The storage layer owns core's commit hook for the life of the
// process: every write-group commit anywhere passes through
// logWriteGroup, which is a cheap map miss for groups that touch no
// durable store.
func init() { core.SetCommitHook(logWriteGroup) }

// logWriteGroup is the core.CommitHook: it serializes the group's ops
// and fsyncs them to the owning store's WAL before core applies
// anything. It runs under the publish lock (shared) with every touched
// relation's mutex held, which gives the log two guarantees for free:
// no Pin interleaves between append and apply, and two groups touching
// a common relation reach the log in their apply order. An append
// error aborts the commit — nothing applied, nothing acknowledged.
func logWriteGroup(g *core.WriteGroup) error {
	var target *Store
	for _, r := range g.Rels() {
		v, ok := durableByRel.Load(r)
		if !ok {
			continue
		}
		st := v.(*Store)
		if st.replaying.Load() {
			// Recovery re-commits logged groups through the normal path;
			// they are already in the log.
			continue
		}
		if target != nil && target != st {
			// Refuse rather than log half a group into each store: a crash
			// between the two appends would recover one store with a group
			// the other never saw, breaking the committed-prefix invariant.
			return fmt.Errorf("storage: write group spans two durable stores")
		}
		target = st
	}
	if target == nil {
		return nil
	}
	payload, err := encodeGroupPayload(g, func(r *core.Relation) bool {
		v, ok := durableByRel.Load(r)
		return ok && v.(*Store) == target
	})
	if err != nil || len(payload) == 0 {
		return err
	}
	lsn, err := target.log.Append(payload)
	if err != nil {
		return fmt.Errorf("storage: wal append: %w", err)
	}
	// Publish the new consistency point. Concurrent groups on disjoint
	// relations may race here, so only ever move the LSN forward.
	for {
		cur := target.lsn.Load()
		if lsn <= cur || target.lsn.CompareAndSwap(cur, lsn) {
			break
		}
	}
	return nil
}

// trackRelations registers rels as logged by s; a no-op for plain
// in-memory stores.
func (s *Store) trackRelations(rels []*core.Relation) {
	if s.log == nil {
		return
	}
	for _, r := range rels {
		durableByRel.Store(r, s)
	}
}

// untrackRelations undoes trackRelations.
func (s *Store) untrackRelations(rels []*core.Relation) {
	if s.log == nil {
		return
	}
	for _, r := range rels {
		durableByRel.Delete(r)
	}
}

// DurableOptions tunes OpenDurableOptions.
type DurableOptions struct {
	// NoSync skips the per-append fsync (group commits remain logged
	// and ordered, but a crash may lose the unsynced suffix). For
	// benchmarks that isolate fsync cost; production opens sync.
	NoSync bool
}

// RecoveryStats reports what OpenDurable found and redid.
type RecoveryStats struct {
	SnapshotLSN    uint64 // WAL LSN the snapshot file was consistent through
	ReplayedGroups int    // complete groups re-applied from the log
	ReplayedTuples int    // tuples staged across those groups
	TornBytes      int64  // trailing log bytes discarded as torn/corrupt
	LogBytes       int64  // log size after recovery
}

// Recovered reports whether opening had to redo any work (or discard a
// torn tail) — the CLI's cue to print a recovery banner.
func (rs RecoveryStats) Recovered() bool {
	return rs.ReplayedGroups > 0 || rs.TornBytes > 0
}

// OpenDurable opens (or creates) the durable store rooted at dir:
// load the last checkpoint snapshot if one exists, open the WAL
// (discarding a torn tail), replay every complete group after the
// snapshot, and checkpoint immediately if anything was replayed so the
// next open starts clean. From then on every committed write group
// touching the store's relations is fsynced to the log before it
// publishes; call Checkpoint to bound the log and Close when done.
func OpenDurable(dir string) (*Store, RecoveryStats, error) {
	return OpenDurableOptions(dir, DurableOptions{})
}

// OpenDurableOptions is OpenDurable with knobs.
func OpenDurableOptions(dir string, opts DurableOptions) (*Store, RecoveryStats, error) {
	var stats RecoveryStats
	if err := os.MkdirAll(dir, 0o777); err != nil {
		return nil, stats, fmt.Errorf("storage: open durable: %w", err)
	}
	snapPath := filepath.Join(dir, snapshotFile)
	st := NewStore()
	var snapLSN uint64
	if _, err := os.Stat(snapPath); err == nil {
		if st, snapLSN, err = loadFile(snapPath); err != nil {
			return nil, stats, err
		}
	} else if !os.IsNotExist(err) {
		return nil, stats, fmt.Errorf("storage: open durable: %w", err)
	}
	stats.SnapshotLSN = snapLSN

	log, err := wal.Open(filepath.Join(dir, walFile), wal.Options{NoSync: opts.NoSync})
	if err != nil {
		return nil, stats, err
	}
	st.dir = dir
	st.log = log
	st.lsn.Store(snapLSN)
	// A checkpoint may have truncated every record the snapshot covers;
	// keep the LSN clock ahead of the snapshot regardless.
	log.EnsureLSN(snapLSN)
	st.mu.RLock()
	loaded := make([]*core.Relation, 0, len(st.rels))
	for _, r := range st.rels {
		loaded = append(loaded, r)
	}
	st.mu.RUnlock()
	st.trackRelations(loaded)

	st.replaying.Store(true)
	err = log.Replay(func(lsn uint64, payload []byte) error {
		if lsn <= snapLSN {
			// Already folded into the snapshot: a crash between the
			// checkpoint's snapshot rename and its log truncation leaves
			// these records behind, and replaying them would double-apply.
			return nil
		}
		n, err := st.applyGroupPayload(payload)
		if err != nil {
			return fmt.Errorf("storage: replay lsn %d: %w", lsn, err)
		}
		st.lsn.Store(lsn)
		stats.ReplayedGroups++
		stats.ReplayedTuples += n
		return nil
	})
	st.replaying.Store(false)
	if err != nil {
		st.untrackRelations(loaded)
		log.Close()
		return nil, stats, err
	}
	stats.TornBytes = log.Stats().TornBytes
	mRecoverGroups.Add(uint64(stats.ReplayedGroups))
	mRecoverTuples.Add(uint64(stats.ReplayedTuples))
	if stats.ReplayedGroups > 0 {
		if err := st.Checkpoint(); err != nil {
			st.Close()
			return nil, stats, err
		}
	}
	stats.LogBytes = log.Size()
	st.RebuildIndexes()
	return st, stats, nil
}

// Durable reports whether the store carries a WAL.
func (s *Store) Durable() bool { return s.log != nil }

// Dir returns the durable store's directory ("" for in-memory stores).
func (s *Store) Dir() string { return s.dir }

// Checkpoint pins one consistent cut of the store, atomically writes
// it as the snapshot file, and truncates the WAL through the cut's
// LSN. Group commits keep flowing while the snapshot is written; their
// records carry LSNs above the cut and survive the truncation. Safe to
// crash at any point: the old snapshot plus the full log, or the new
// snapshot plus a log whose ≤LSN prefix replay skips, both recover the
// same state.
func (s *Store) Checkpoint() error {
	if s.log == nil {
		return fmt.Errorf("storage: checkpoint: store is not durable")
	}
	t0 := time.Now()
	cut := s.pinAll()
	if err := savePinned(filepath.Join(s.dir, snapshotFile), cut); err != nil {
		return err
	}
	if err := s.log.TruncateThrough(cut.lsn); err != nil {
		return err
	}
	mCheckpointCount.Inc()
	mCheckpointNs.ObserveSince(t0)
	return nil
}

// Close checkpoints the store, stops logging its relations, and closes
// the WAL. A write group racing Close either lands before the untrack
// (logged and folded into the final state at the next open) or fails
// its append against the closed log and aborts — never silently
// undurable. In-memory stores close as a no-op.
func (s *Store) Close() error {
	if s.log == nil {
		return nil
	}
	err := s.Checkpoint()
	s.mu.RLock()
	rels := make([]*core.Relation, 0, len(s.rels))
	for _, r := range s.rels {
		rels = append(rels, r)
	}
	s.mu.RUnlock()
	for _, r := range rels {
		durableByRel.Delete(r)
	}
	if cerr := s.log.Close(); err == nil {
		err = cerr
	}
	return err
}
