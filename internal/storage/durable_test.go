package storage

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/lifespan"
	"repro/internal/schema"
	"repro/internal/value"
)

func dScheme(name string) *schema.Scheme {
	full := lifespan.MustParse("{[0,999]}")
	return schema.MustNew(name, []string{"K"},
		schema.Attribute{Name: "K", Domain: value.Strings, Lifespan: full},
		schema.Attribute{Name: "V", Domain: value.Ints, Lifespan: full, Interp: "step"},
	)
}

func dTuple(s *schema.Scheme, k string, v int64) *core.Tuple {
	return core.NewTupleBuilder(s, lifespan.Interval(0, 9)).
		Key("K", value.String_(k)).
		Set("V", 0, 9, value.Int(v)).
		MustBuild()
}

func openDurableT(t *testing.T, dir string) (*Store, RecoveryStats) {
	t.Helper()
	st, stats, err := OpenDurable(dir)
	if err != nil {
		t.Fatalf("OpenDurable(%s): %v", dir, err)
	}
	t.Cleanup(func() { st.Close() })
	return st, stats
}

// commitKV commits one write group inserting key k{i} into every given
// relation of st.
func commitKV(t *testing.T, rels []*core.Relation, i int) {
	t.Helper()
	g := core.NewWriteGroup()
	for j, r := range rels {
		g.Insert(r, dTuple(r.Scheme(), fmt.Sprintf("k%03d", i), int64(i*10+j)))
	}
	if err := g.Commit(); err != nil {
		t.Fatalf("commit group %d: %v", i, err)
	}
}

// checkPrefix asserts the named relation holds exactly groups 1..wantK.
func checkPrefix(t *testing.T, st *Store, name string, wantK int) {
	t.Helper()
	r, ok := st.Get(name)
	if !ok {
		if wantK != 0 {
			t.Fatalf("relation %s missing, want %d groups", name, wantK)
		}
		return
	}
	_, vers := core.Pin(r)
	v := vers[0]
	if v.Cardinality() != wantK {
		t.Fatalf("relation %s has %d tuples, want exactly groups 1..%d", name, v.Cardinality(), wantK)
	}
	for i := 1; i <= wantK; i++ {
		// Lookup takes canonical value renderings; strings are quoted.
		if _, ok := v.Lookup(fmt.Sprintf("%q", fmt.Sprintf("k%03d", i))); !ok {
			t.Fatalf("relation %s lost group %d of a committed prefix of %d", name, i, wantK)
		}
	}
}

// copyFile copies src to dst if src exists.
func copyFile(t *testing.T, src, dst string) {
	t.Helper()
	b, err := os.ReadFile(src)
	if os.IsNotExist(err) {
		return
	}
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(dst, b, 0o666); err != nil {
		t.Fatal(err)
	}
}

// cloneDir copies a durable store directory, simulating the on-disk
// state a crash at this instant would leave (every WAL append is
// fsynced, so the live files are the durable state).
func cloneDir(t *testing.T, src string) string {
	t.Helper()
	dst := t.TempDir()
	copyFile(t, filepath.Join(src, snapshotFile), filepath.Join(dst, snapshotFile))
	copyFile(t, filepath.Join(src, walFile), filepath.Join(dst, walFile))
	return dst
}

// TestDurableCleanLifecycle: open empty → put → commit groups →
// close → reopen reproduces the store with nothing to replay.
func TestDurableCleanLifecycle(t *testing.T) {
	dir := t.TempDir()
	st, stats := openDurableT(t, dir)
	if stats.Recovered() {
		t.Fatalf("fresh dir reported recovery: %+v", stats)
	}
	a := core.NewRelation(dScheme("DA"))
	b := core.NewRelation(dScheme("DB"))
	st.Put(a)
	st.Put(b)
	for i := 1; i <= 5; i++ {
		commitKV(t, []*core.Relation{a, b}, i)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, stats2 := openDurableT(t, dir)
	if stats2.ReplayedGroups != 0 || stats2.TornBytes != 0 {
		t.Fatalf("clean close still replayed: %+v", stats2)
	}
	checkPrefix(t, st2, "DA", 5)
	checkPrefix(t, st2, "DB", 5)
	ra, _ := st2.Get("DA")
	if !ra.Equal(func() *core.Relation { _, v := core.Pin(a); return v[0].View() }()) {
		t.Fatal("reloaded DA differs from the original")
	}
}

// TestDurableReplayWithoutCheckpoint: a crash before any checkpoint
// recovers everything from the log alone, including relations the
// snapshot never saw (the payload carries the scheme).
func TestDurableReplayWithoutCheckpoint(t *testing.T) {
	dir := t.TempDir()
	st, _ := openDurableT(t, dir)
	a := core.NewRelation(dScheme("RA"))
	b := core.NewRelation(dScheme("RB"))
	st.Put(a)
	st.Put(b)
	for i := 1; i <= 7; i++ {
		commitKV(t, []*core.Relation{a, b}, i)
	}
	crash := cloneDir(t, dir) // no Close, no Checkpoint

	st2, stats := openDurableT(t, crash)
	if stats.ReplayedGroups != 7 {
		t.Fatalf("replayed %d groups, want 7 (stats %+v)", stats.ReplayedGroups, stats)
	}
	if stats.ReplayedTuples != 14 {
		t.Fatalf("replayed %d tuples, want 14", stats.ReplayedTuples)
	}
	if !stats.Recovered() {
		t.Fatal("stats.Recovered() = false after a real replay")
	}
	checkPrefix(t, st2, "RA", 7)
	checkPrefix(t, st2, "RB", 7)

	// Recovery folded the replay into a fresh checkpoint: a third open
	// starts from the snapshot with nothing to redo.
	st2.Close()
	st3, stats3 := openDurableT(t, crash)
	if stats3.ReplayedGroups != 0 {
		t.Fatalf("post-recovery open replayed %d groups, want 0", stats3.ReplayedGroups)
	}
	checkPrefix(t, st3, "RA", 7)
}

// TestCheckpointCrashWindowIdempotence models the checkpoint's crash
// window: the new snapshot has been renamed into place but the log has
// not yet been truncated. Replay must skip every record the snapshot
// already covers — applying them twice would fail (duplicate keys) or
// double data.
func TestCheckpointCrashWindowIdempotence(t *testing.T) {
	dir := t.TempDir()
	st, _ := openDurableT(t, dir)
	a := core.NewRelation(dScheme("CA"))
	st.Put(a)
	for i := 1; i <= 3; i++ {
		commitKV(t, []*core.Relation{a}, i)
	}
	crash := cloneDir(t, dir) // full log, no snapshot
	if err := st.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// Graft the post-checkpoint snapshot next to the pre-checkpoint log:
	// exactly the state of a crash between Save and TruncateThrough.
	copyFile(t, filepath.Join(dir, snapshotFile), filepath.Join(crash, snapshotFile))

	st2, stats := openDurableT(t, crash)
	if stats.SnapshotLSN != 3 || stats.ReplayedGroups != 0 {
		t.Fatalf("crash-window open: %+v, want snapshot LSN 3 and 0 replayed", stats)
	}
	checkPrefix(t, st2, "CA", 3)

	// And fresh groups after the window land at LSNs above the snapshot.
	ca, _ := st2.Get("CA")
	commitKV(t, []*core.Relation{ca}, 4)
	crash2 := cloneDir(t, crash)
	st3, stats3 := openDurableT(t, crash2)
	if stats3.ReplayedGroups != 1 {
		t.Fatalf("replayed %d, want exactly the post-window group", stats3.ReplayedGroups)
	}
	checkPrefix(t, st3, "CA", 4)
}

// TestCrashRecoveryTorture is the headline durability proof: commit
// groups spanning two relations, cut the WAL at every group boundary,
// at off-by-one offsets around each, and at random byte offsets, and
// require every reopen to recover a store equal to a prefix of the
// committed groups — both relations at the same prefix (no torn
// groups), nothing beyond the bytes on disk (no inventions), and with
// the full log present, everything (no lost acknowledged commits).
func TestCrashRecoveryTorture(t *testing.T) {
	dir := t.TempDir()
	st, _ := openDurableT(t, dir)
	sa, sb := dScheme("TA"), dScheme("TB")
	a, b := core.NewRelation(sa), core.NewRelation(sb)
	st.Put(a)
	st.Put(b)

	const groups = 25
	boundaries := []int64{st.log.Size()} // boundaries[k] = log size after k groups
	for i := 1; i <= groups; i++ {
		commitKV(t, []*core.Relation{a, b}, i)
		boundaries = append(boundaries, st.log.Size())
	}
	walBytes, err := os.ReadFile(filepath.Join(dir, walFile))
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(walBytes)) != boundaries[groups] {
		t.Fatalf("on-disk log is %d bytes, in-memory says %d", len(walBytes), boundaries[groups])
	}

	cuts := map[int64]bool{0: true, 1: true, int64(len(walBytes)): true}
	for _, bd := range boundaries {
		for _, d := range []int64{-1, 0, 1} {
			if c := bd + d; c >= 0 && c <= int64(len(walBytes)) {
				cuts[c] = true
			}
		}
	}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 40; i++ {
		cuts[rng.Int63n(int64(len(walBytes)) + 1)] = true
	}

	for cut := range cuts {
		d2 := t.TempDir()
		if err := os.WriteFile(filepath.Join(d2, walFile), walBytes[:cut], 0o666); err != nil {
			t.Fatal(err)
		}
		st2, stats, err := OpenDurable(d2)
		if err != nil {
			t.Fatalf("cut at %d: OpenDurable: %v", cut, err)
		}
		wantK := 0
		for k := 1; k <= groups; k++ {
			if boundaries[k] <= cut {
				wantK = k
			}
		}
		if stats.ReplayedGroups != wantK {
			t.Fatalf("cut at %d: replayed %d groups, want %d", cut, stats.ReplayedGroups, wantK)
		}
		checkPrefix(t, st2, "TA", wantK)
		checkPrefix(t, st2, "TB", wantK)
		if err := st2.Close(); err != nil {
			t.Fatalf("cut at %d: close recovered store: %v", cut, err)
		}
	}
}

// TestDurableConcurrentCommitsAndCheckpoints races writer goroutines
// against repeated checkpoints, then proves no acknowledged commit was
// lost across a reopen. Run under -race this also exercises the
// hook/pin/checkpoint locking story.
func TestDurableConcurrentCommitsAndCheckpoints(t *testing.T) {
	dir := t.TempDir()
	st, _ := openDurableT(t, dir)
	const writers, perWriter = 4, 25
	rels := make([]*core.Relation, writers)
	for w := range rels {
		rels[w] = core.NewRelation(dScheme(fmt.Sprintf("CC%d", w)))
		st.Put(rels[w])
	}
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 1; i <= perWriter; i++ {
				g := core.NewWriteGroup()
				g.Insert(rels[w], dTuple(rels[w].Scheme(), fmt.Sprintf("k%03d", i), int64(i)))
				if err := g.Commit(); err != nil {
					t.Errorf("writer %d group %d: %v", w, i, err)
					return
				}
			}
		}(w)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	for {
		select {
		case <-done:
			goto drained
		default:
			if err := st.Checkpoint(); err != nil {
				t.Fatalf("checkpoint during writes: %v", err)
			}
		}
	}
drained:
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	st2, _ := openDurableT(t, dir)
	for w := 0; w < writers; w++ {
		checkPrefix(t, st2, fmt.Sprintf("CC%d", w), perWriter)
	}
}

// TestMergeStoreDurable: relations created by MergeStore inside the
// group commit are logged with it — a crash right after the merge
// recovers them from the WAL alone.
func TestMergeStoreDurable(t *testing.T) {
	dir := t.TempDir()
	st, _ := openDurableT(t, dir)
	existing := core.NewRelation(dScheme("ME"))
	st.Put(existing)
	commitKV(t, []*core.Relation{existing}, 1)

	src := NewStore()
	srcExisting := core.NewRelation(dScheme("ME"))
	srcExisting.MustInsert(dTuple(srcExisting.Scheme(), "k002", 20))
	src.Put(srcExisting)
	srcFresh := core.NewRelation(dScheme("MF"))
	srcFresh.MustInsert(dTuple(srcFresh.Scheme(), "k001", 10))
	src.Put(srcFresh)

	if err := st.MergeStore(src); err != nil {
		t.Fatal(err)
	}
	crash := cloneDir(t, dir) // no checkpoint between merge and crash
	st2, stats, err := OpenDurable(crash)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if stats.ReplayedGroups != 2 {
		t.Fatalf("replayed %d groups, want 2 (initial + merge)", stats.ReplayedGroups)
	}
	checkPrefix(t, st2, "ME", 2)
	checkPrefix(t, st2, "MF", 1)
}

// TestDirectInsertsDurableAtCheckpoint documents the WAL's scope:
// direct Relation inserts bypass the commit hook and become durable
// only at the next checkpoint.
func TestDirectInsertsDurableAtCheckpoint(t *testing.T) {
	dir := t.TempDir()
	st, _ := openDurableT(t, dir)
	r := core.NewRelation(dScheme("DI"))
	st.Put(r)
	r.MustInsert(dTuple(r.Scheme(), "k001", 1))

	// Not logged: a crash now loses the direct insert.
	st2, _, err := OpenDurable(cloneDir(t, dir))
	if err != nil {
		t.Fatal(err)
	}
	checkPrefix(t, st2, "DI", 0)
	st2.Close()

	// Checkpointed: the snapshot carries it.
	if err := st.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	st3, _, err := OpenDurable(cloneDir(t, dir))
	if err != nil {
		t.Fatal(err)
	}
	checkPrefix(t, st3, "DI", 1)
	st3.Close()
}

// TestWriteGroupSpanningTwoDurableStoresRefused: logging half a group
// into each store would break the committed-prefix invariant on a
// crash between the appends, so the hook refuses outright.
func TestWriteGroupSpanningTwoDurableStoresRefused(t *testing.T) {
	st1, _ := openDurableT(t, t.TempDir())
	st2, _ := openDurableT(t, t.TempDir())
	r1 := core.NewRelation(dScheme("SA"))
	r2 := core.NewRelation(dScheme("SB"))
	st1.Put(r1)
	st2.Put(r2)
	g := core.NewWriteGroup()
	g.Insert(r1, dTuple(r1.Scheme(), "k001", 1))
	g.Insert(r2, dTuple(r2.Scheme(), "k001", 1))
	if err := g.Commit(); err == nil {
		t.Fatal("group spanning two durable stores committed")
	}
	if r1.Cardinality() != 0 || r2.Cardinality() != 0 {
		t.Fatal("refused group still applied tuples")
	}
}
