package storage

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
)

// FuzzWALCorruption fuzzes *corruption*, not log bytes: a pristine WAL
// of known committed groups is truncated at an arbitrary offset and
// has one byte flipped, and recovery must neither panic nor produce
// anything but a committed prefix — both relations cut at the same
// group (atomicity), no key outside 1..k (no inventions). Fuzzing raw
// log bytes instead would let the fuzzer *construct* valid logs that
// were never committed, which are not recovery's contract.
func FuzzWALCorruption(f *testing.F) {
	const groups = 6
	seedDir := f.TempDir()
	st, _, err := OpenDurableOptions(seedDir, DurableOptions{NoSync: true})
	if err != nil {
		f.Fatal(err)
	}
	a := core.NewRelation(dScheme("FA"))
	b := core.NewRelation(dScheme("FB"))
	st.Put(a)
	st.Put(b)
	for i := 1; i <= groups; i++ {
		g := core.NewWriteGroup()
		g.Insert(a, dTuple(a.Scheme(), fmt.Sprintf("k%03d", i), int64(i)))
		g.Insert(b, dTuple(b.Scheme(), fmt.Sprintf("k%03d", i), int64(-i)))
		if err := g.Commit(); err != nil {
			f.Fatal(err)
		}
	}
	pristine, err := os.ReadFile(filepath.Join(seedDir, walFile))
	if err != nil {
		f.Fatal(err)
	}
	if err := st.log.Close(); err != nil {
		f.Fatal(err)
	}

	f.Add(uint32(len(pristine)), uint32(0), byte(0))  // untouched
	f.Add(uint32(4), uint32(2), byte(0xff))           // inside the header
	f.Add(uint32(len(pristine)-3), uint32(9), byte(1)) // torn tail + header flip
	f.Add(uint32(len(pristine)), uint32(40), byte(8)) // mid-log flip

	f.Fuzz(func(t *testing.T, truncAt, flipPos uint32, flipMask byte) {
		data := append([]byte(nil), pristine...)
		if int64(truncAt) < int64(len(data)) {
			data = data[:truncAt]
		}
		if len(data) > 0 {
			data[int(flipPos)%len(data)] ^= flipMask
		}
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, walFile), data, 0o666); err != nil {
			t.Fatal(err)
		}
		rec, _, err := OpenDurableOptions(dir, DurableOptions{NoSync: true})
		if err != nil {
			t.Fatalf("recovery must absorb any tail corruption, got: %v", err)
		}
		defer rec.log.Close()

		card := func(name string) int {
			r, ok := rec.Get(name)
			if !ok {
				return 0
			}
			_, vers := core.Pin(r)
			return vers[0].Cardinality()
		}
		ka, kb := card("FA"), card("FB")
		if ka != kb {
			t.Fatalf("torn group recovered: |FA|=%d |FB|=%d", ka, kb)
		}
		if ka > groups {
			t.Fatalf("recovered %d groups, only %d were committed", ka, groups)
		}
		for _, name := range []string{"FA", "FB"} {
			r, ok := rec.Get(name)
			if !ok {
				continue
			}
			_, vers := core.Pin(r)
			for i := 1; i <= ka; i++ {
				if _, ok := vers[0].Lookup(fmt.Sprintf("%q", fmt.Sprintf("k%03d", i))); !ok {
					t.Fatalf("relation %s holds %d tuples but not key k%03d: not a prefix", name, ka, i)
				}
			}
		}
	})
}
