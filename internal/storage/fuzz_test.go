package storage

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/lifespan"
	"repro/internal/schema"
	"repro/internal/value"
)

// FuzzDecode hardens the binary decoder against corrupt input: any byte
// string must produce an error or a valid relation, never a panic or an
// invariant-violating result. `go test` runs the seed corpus; `go test
// -fuzz=FuzzDecode` explores further.
func FuzzDecode(f *testing.F) {
	// Seeds: a valid encoding, its prefixes, and mutations.
	full := lifespan.MustParse("{[0,9]}")
	s := schema.MustNew("R", []string{"K"},
		schema.Attribute{Name: "K", Domain: value.Strings, Lifespan: full},
		schema.Attribute{Name: "V", Domain: value.Ints, Lifespan: full, Interp: "step"},
	)
	r := core.NewRelation(s)
	r.MustInsert(core.NewTupleBuilder(s, full).
		Key("K", value.String_("a")).
		Set("V", 0, 9, value.Int(7)).
		MustBuild())
	valid, err := EncodeBytes(r)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add([]byte{})
	f.Add([]byte{0x4d, 0x44, 0x52, 0x48}) // magic only, wrong order
	mutated := append([]byte(nil), valid...)
	for i := 8; i < len(mutated); i += 9 {
		mutated[i] ^= 0xff
	}
	f.Add(mutated)

	f.Fuzz(func(t *testing.T, data []byte) {
		rel, err := DecodeBytes(data)
		if err != nil {
			return // rejection is the expected path for junk
		}
		// Anything accepted must be internally consistent: re-encoding
		// must succeed and round-trip.
		blob, err := EncodeBytes(rel)
		if err != nil {
			t.Fatalf("accepted relation failed to re-encode: %v", err)
		}
		back, err := DecodeBytes(blob)
		if err != nil {
			t.Fatalf("re-encoded relation failed to decode: %v", err)
		}
		if !back.Equal(rel) {
			t.Fatal("accepted relation does not round-trip")
		}
	})
}

// FuzzParseText does the same for the textual loader.
func FuzzParseText(f *testing.F) {
	f.Add(sampleText)
	f.Add("relation R key K\nattr K string {[0,9]}\n")
	f.Add("tuple {[0,9]}")
	f.Add("#\n\n#")
	f.Fuzz(func(t *testing.T, in string) {
		st, err := ParseText(strings.NewReader(in))
		if err != nil {
			return
		}
		for _, n := range st.Names() {
			r, _ := st.Get(n)
			if _, err := EncodeBytes(r); err != nil {
				t.Fatalf("accepted text relation %s fails binary encode: %v", n, err)
			}
		}
	})
}
