package storage

import (
	"bytes"
	"fmt"

	"repro/internal/core"
	"repro/internal/tfunc"
)

// The WAL payload for one committed write group, restricted to the
// relations of one durable store:
//
//	u32 nRels
//	per relation: scheme (encodeScheme) | u32 nOps
//	per op:       u8 flags (bit0 = merging) | lifespan | one func per
//	              scheme attribute, in scheme order
//
// The codec reuses the binary store format's primitives (errWriter /
// errReader, scheme, lifespan and step-function encodings), so the log
// speaks the same dialect as the snapshot file. Carrying the full
// scheme per relation makes every record self-describing: replay can
// rebuild a relation created after the last checkpoint from its log
// record alone.

// groupOpFlagMerging marks an op staged with InsertMerging semantics.
const groupOpFlagMerging = 1

// encodeGroupPayload serializes the ops of g whose relation satisfies
// belongs. It returns nil (no error) when no staged op belongs. The
// staged tuples are reachable only through the group — pre-apply, under
// the commit locks — so this read path needs no pin.
func encodeGroupPayload(g *core.WriteGroup, belongs func(*core.Relation) bool) ([]byte, error) {
	type stagedOp struct {
		t       *core.Tuple
		merging bool
	}
	var rels []*core.Relation
	byRel := make(map[*core.Relation][]stagedOp)
	g.Ops(func(r *core.Relation, t *core.Tuple, merging bool) {
		if !belongs(r) {
			return
		}
		if _, ok := byRel[r]; !ok {
			rels = append(rels, r)
		}
		byRel[r] = append(byRel[r], stagedOp{t: t, merging: merging})
	})
	if len(rels) == 0 {
		return nil, nil
	}
	var buf bytes.Buffer
	w := &errWriter{w: &buf}
	w.u32(uint32(len(rels)))
	for _, r := range rels {
		s := r.Scheme()
		encodeScheme(w, s)
		ops := byRel[r]
		w.u32(uint32(len(ops)))
		for _, op := range ops {
			var flags uint8
			if op.merging {
				flags |= groupOpFlagMerging
			}
			w.u8(flags)
			encodeLifespan(w, op.t.Lifespan())
			for _, a := range s.Attrs {
				encodeFunc(w, op.t.Value(a.Name))
			}
		}
	}
	if w.err != nil {
		return nil, fmt.Errorf("storage: encode group: %w", w.err)
	}
	return buf.Bytes(), nil
}

// applyGroupPayload re-executes one logged group against s as a fresh
// write group: ops land on the store's existing relations by name, and
// a relation the snapshot doesn't know is rebuilt from the record's
// scheme and registered after the commit. Returns the number of tuples
// staged. The caller runs with s.replaying set, so the commit hook
// does not re-log the group.
func (s *Store) applyGroupPayload(payload []byte) (int, error) {
	r := &errReader{r: bytes.NewReader(payload)}
	nRels := r.count()
	if r.err != nil {
		return 0, r.err
	}
	g := core.NewWriteGroup()
	var fresh []*core.Relation
	tuples := 0
	for i := uint32(0); i < nRels; i++ {
		sch, err := decodeScheme(r)
		if err != nil {
			return 0, fmt.Errorf("storage: replay scheme: %w", err)
		}
		target, ok := s.Get(sch.Name)
		if ok {
			if target.Scheme().String() != sch.String() {
				return 0, fmt.Errorf("storage: replay: relation %s: logged scheme differs from store:\n  have %s\n  got  %s",
					sch.Name, target.Scheme(), sch)
			}
			sch = target.Scheme()
		} else {
			target = core.NewRelation(sch)
			fresh = append(fresh, target)
		}
		nOps := r.count()
		if r.err != nil {
			return 0, r.err
		}
		for j := uint32(0); j < nOps; j++ {
			flags := r.u8()
			ls := decodeLifespan(r)
			vals := make(map[string]tfunc.Func, len(sch.Attrs))
			for _, a := range sch.Attrs {
				vals[a.Name] = decodeFunc(r)
			}
			if r.err != nil {
				return 0, r.err
			}
			t, err := core.NewTuple(sch, ls, vals)
			if err != nil {
				return 0, fmt.Errorf("storage: replay tuple %d of %s: %w", j, sch.Name, err)
			}
			if flags&groupOpFlagMerging != 0 {
				g.InsertMerging(target, t)
			} else {
				g.Insert(target, t)
			}
			tuples++
		}
	}
	if err := g.Commit(); err != nil {
		return 0, fmt.Errorf("storage: replay commit: %w", err)
	}
	for _, nr := range fresh {
		s.Put(nr)
	}
	return tuples, nil
}
