package storage

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/core"
)

const mergeBaseText = `
relation EMP key NAME
  attr NAME string  {[0,99]}
  attr SAL  int     {[0,99]} step
tuple {[0,9]}
  NAME = "John" @ {[0,9]}
  SAL  = 30000  @ {[0,9]}
`

func parseTextString(t *testing.T, src string) *Store {
	t.Helper()
	st, err := ParseText(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// TestMergeStore: merging a parsed text store into an existing one
// extends shared histories, registers new relations, and publishes
// everything as one write group (one epoch tick).
func TestMergeStore(t *testing.T) {
	st := parseTextString(t, mergeBaseText)
	add := parseTextString(t, `
relation EMP key NAME
  attr NAME string  {[0,99]}
  attr SAL  int     {[0,99]} step
tuple {[10,19]}
  NAME = "John" @ {[10,19]}
  SAL  = 32000  @ {[10,19]}
tuple {[0,9]}
  NAME = "Mary" @ {[0,9]}
  SAL  = 40000  @ {[0,9]}
relation DEPT key DNAME
  attr DNAME string {[0,99]}
tuple {[0,9]}
  DNAME = "Toys" @ {[0,9]}
`)

	e0 := core.Epoch()
	if err := st.MergeStore(add); err != nil {
		t.Fatal(err)
	}
	if got := core.Epoch(); got != e0+1 {
		t.Fatalf("merge epoch delta %d, want exactly 1 (one write group)", got-e0)
	}
	emp, _ := st.Get("EMP")
	if emp.Cardinality() != 2 {
		t.Fatalf("EMP cardinality %d, want 2", emp.Cardinality())
	}
	john, ok := emp.Lookup(`"John"`)
	if !ok || john.Lifespan().String() != "{[0,19]}" {
		t.Fatalf("John's history not merged: %v %v", ok, john)
	}
	dept, ok := st.Get("DEPT")
	if !ok || dept.Cardinality() != 1 {
		t.Fatal("new relation DEPT not registered with its tuples")
	}
}

// TestMergeStoreFailureLeavesStoreUntouched: a contradicting history
// (or an incompatible scheme) aborts the whole merge — existing
// relations keep their state and no half-registered relation remains.
func TestMergeStoreFailureLeavesStoreUntouched(t *testing.T) {
	st := parseTextString(t, mergeBaseText)
	emp, _ := st.Get("EMP")
	v0 := emp.Version()

	// John already earns 30000 over [0,9]; 99 contradicts it.
	contradicting := parseTextString(t, `
relation EMP key NAME
  attr NAME string  {[0,99]}
  attr SAL  int     {[0,99]} step
tuple {[5,9]}
  NAME = "John" @ {[5,9]}
  SAL  = 99     @ {[5,9]}
relation DEPT key DNAME
  attr DNAME string {[0,99]}
tuple {[0,9]}
  DNAME = "Toys" @ {[0,9]}
`)
	err := st.MergeStore(contradicting)
	if err == nil || !strings.Contains(err.Error(), "contradicts") {
		t.Fatalf("want contradiction error, got %v", err)
	}
	if emp.Version() != v0 || emp.Cardinality() != 1 {
		t.Fatal("failed merge mutated an existing relation")
	}
	if _, ok := st.Get("DEPT"); ok {
		t.Fatal("failed merge left a half-registered relation behind")
	}

	// Incompatible scheme: rejected before anything is staged.
	incompatible := parseTextString(t, `
relation EMP key NAME
  attr NAME string {[0,99]}
tuple {[0,9]}
  NAME = "Zoe" @ {[0,9]}
`)
	err = st.MergeStore(incompatible)
	if err == nil || !strings.Contains(err.Error(), "schemes differ") {
		t.Fatalf("want scheme error, got %v", err)
	}
	if emp.Version() != v0 {
		t.Fatal("scheme mismatch mutated the store")
	}

	// Same attributes and key but a different attribute lifespan (ALS):
	// also incompatible — tuples valid under the wider scheme would
	// violate the destination's declared lifespans.
	widerALS := parseTextString(t, `
relation EMP key NAME
  attr NAME string  {[0,999]}
  attr SAL  int     {[0,999]} step
tuple {[100,109]}
  NAME = "Late" @ {[100,109]}
  SAL  = 50000  @ {[100,109]}
`)
	err = st.MergeStore(widerALS)
	if err == nil || !strings.Contains(err.Error(), "schemes differ") {
		t.Fatalf("want scheme error for differing ALS, got %v", err)
	}
	if emp.Version() != v0 {
		t.Fatal("ALS mismatch mutated the store")
	}
}

// TestMergeStoreConcurrentReaders: readers resolving and iterating the
// store while MergeStore registers a new relation must never observe a
// half-loaded one — a resolvable name always answers with the full
// tuple set. Run with -race (this also exercises the store's map
// guard).
func TestMergeStoreConcurrentReaders(t *testing.T) {
	st := parseTextString(t, mergeBaseText)
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			select {
			case <-stop:
				return
			default:
			}
			for _, name := range st.Names() {
				r, ok := st.Get(name)
				if !ok {
					continue
				}
				if name == "BULK" && r.Cardinality() != 100 {
					t.Errorf("resolved a half-loaded relation: |BULK|=%d", r.Cardinality())
					return
				}
			}
		}
	}()

	var bulk strings.Builder
	bulk.WriteString("relation BULK key ID\n  attr ID int {[0,999]}\n")
	for i := 0; i < 100; i++ {
		fmt.Fprintf(&bulk, "tuple {[0,9]}\n  ID = %d @ {[0,9]}\n", i)
	}
	add := parseTextString(t, bulk.String())
	if err := st.MergeStore(add); err != nil {
		t.Fatal(err)
	}
	close(stop)
	<-done
	if r, ok := st.Get("BULK"); !ok || r.Cardinality() != 100 {
		t.Fatal("BULK missing after merge")
	}
}

// TestParseTextSingleGroupPublication: a multi-relation text file
// loads as one publication — the epoch moves by exactly one however
// many relation sections the file holds.
func TestParseTextSingleGroupPublication(t *testing.T) {
	e0 := core.Epoch()
	st := parseTextString(t, mergeBaseText+`
relation DEPT key DNAME
  attr DNAME string {[0,99]}
tuple {[0,9]}
  DNAME = "Toys" @ {[0,9]}
relation SHIP key ID
  attr ID int {[0,99]}
tuple {[0,9]}
  ID = 1 @ {[0,9]}
`)
	if got := core.Epoch(); got != e0+1 {
		t.Fatalf("text load epoch delta %d, want exactly 1", got-e0)
	}
	if len(st.Names()) != 3 {
		t.Fatalf("loaded %v", st.Names())
	}
}
