package storage

import (
	"bytes"
	"path/filepath"
	"testing"

	"repro/internal/chronon"

	"repro/internal/core"
	"repro/internal/lifespan"
	"repro/internal/schema"
	"repro/internal/value"
)

func fixture(t *testing.T) *core.Relation {
	t.Helper()
	full := lifespan.MustParse("{[0,99]}")
	s := schema.MustNew("EMP", []string{"NAME"},
		schema.Attribute{Name: "NAME", Domain: value.Strings, Lifespan: full},
		schema.Attribute{Name: "SAL", Domain: value.Ints, Lifespan: full, Interp: "step"},
		schema.Attribute{Name: "RATE", Domain: value.Floats, Lifespan: full},
		schema.Attribute{Name: "ACTIVE", Domain: value.Bools, Lifespan: full},
		schema.Attribute{Name: "REVIEW", Domain: value.Times, Lifespan: full},
	)
	r := core.NewRelation(s)
	r.MustInsert(core.NewTupleBuilder(s, lifespan.MustParse("{[0,9],[20,29]}")).
		Key("NAME", value.String_("John")).
		Set("SAL", 0, 4, value.Int(30000)).
		Set("SAL", 5, 9, value.Int(34000)).
		Set("SAL", 20, 29, value.Int(40000)).
		Set("RATE", 0, 9, value.Float(1.25)).
		Set("ACTIVE", 0, 9, value.Bool(true)).
		Set("ACTIVE", 20, 29, value.Bool(false)).
		Set("REVIEW", 0, 9, value.TimeVal(7)).
		MustBuild())
	r.MustInsert(core.NewTupleBuilder(s, lifespan.MustParse("{[3,19]}")).
		Key("NAME", value.String_("Mary")).
		Set("SAL", 3, 19, value.Int(40000)).
		MustBuild())
	return r
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	r := fixture(t)
	b, err := EncodeBytes(r)
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeBytes(b)
	if err != nil {
		t.Fatal(err)
	}
	if !back.Equal(r) {
		t.Fatalf("round trip lost data:\n%s\nvs\n%s", back, r)
	}
	// Scheme details survive too.
	a, _ := back.Scheme().Attr("SAL")
	if a.Interp != "step" || a.Domain != value.Ints {
		t.Errorf("scheme attribute metadata lost: %+v", a)
	}
	if len(back.Scheme().Key) != 1 || back.Scheme().Key[0] != "NAME" {
		t.Errorf("key lost: %v", back.Scheme().Key)
	}
}

func TestDecodeErrors(t *testing.T) {
	r := fixture(t)
	b, err := EncodeBytes(r)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt magic.
	bad := append([]byte(nil), b...)
	bad[0] ^= 0xff
	if _, err := DecodeBytes(bad); err == nil {
		t.Error("corrupt magic must fail")
	}
	// Truncations at every prefix must error, never panic.
	for n := 0; n < len(b); n += 7 {
		if _, err := DecodeBytes(b[:n]); err == nil {
			t.Fatalf("truncation to %d bytes must fail", n)
		}
	}
	// Corrupt version.
	bad2 := append([]byte(nil), b...)
	bad2[4] = 0xff
	if _, err := DecodeBytes(bad2); err == nil {
		t.Error("bad version must fail")
	}
}

func TestEncodeDeterministic(t *testing.T) {
	r := fixture(t)
	b1, err := EncodeBytes(r)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := EncodeBytes(r)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b2) {
		t.Error("encoding must be deterministic")
	}
}

func TestStoreSaveLoad(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "db.hrdm")
	s := NewStore()
	r := fixture(t)
	s.Put(r)
	if err := s.Save(path); err != nil {
		t.Fatal(err)
	}
	back, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got := back.Names(); len(got) != 1 || got[0] != "EMP" {
		t.Fatalf("Names = %v", got)
	}
	lr, ok := back.Get("EMP")
	if !ok || !lr.Equal(r) {
		t.Error("loaded relation differs")
	}
	if _, ok := back.Get("NOPE"); ok {
		t.Error("unknown relation must miss")
	}
	if _, err := Load(filepath.Join(dir, "missing")); err == nil {
		t.Error("missing file must fail")
	}
}

func TestSizeBytesEconomy(t *testing.T) {
	// The representation-level size must depend on the number of value
	// changes, not on history length — HRDM's core storage advantage.
	full := lifespan.MustParse("{[0,9999]}")
	s := schema.MustNew("R", []string{"K"},
		schema.Attribute{Name: "K", Domain: value.Strings, Lifespan: full},
		schema.Attribute{Name: "V", Domain: value.Ints, Lifespan: full},
	)
	quiet := core.NewRelation(s)
	quiet.MustInsert(core.NewTupleBuilder(s, full).
		Key("K", value.String_("a")).
		Set("V", 0, 9999, value.Int(1)).
		MustBuild())

	busy := core.NewRelation(s)
	b := core.NewTupleBuilder(s, full).Key("K", value.String_("b"))
	for i := int64(0); i < 10000; i += 2 {
		b.Set("V", chronon.Time(i), chronon.Time(i+1), value.Int(i%7))
	}
	busy.MustInsert(b.MustBuild())

	qs, bs := SizeBytes(quiet), SizeBytes(busy)
	if qs*100 > bs {
		t.Errorf("quiet history (%d bytes) should be >100x smaller than busy (%d bytes)", qs, bs)
	}
}
