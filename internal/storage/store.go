package storage

import (
	"fmt"
	"os"
	"sort"
	"sync"

	"repro/internal/chronon"
	"repro/internal/core"
	"repro/internal/value"
)

// IndexBuilder is installed by internal/engine's init (storage cannot
// import the engine without cycling through hql): it eagerly builds the
// engine's lifespan interval index and key hash indexes for a relation.
// Programs that link the engine get index-warm stores from Load and
// ParseText; programs that don't simply skip the warm-up.
var IndexBuilder func(*core.Relation)

// Store is a minimal heap-file style database: a set of named historical
// relations that can be persisted to and reloaded from a single file.
// It stands in for the paper's physical level in the examples and the
// CLI; durability is out of the paper's scope. The name map itself is
// guarded by an RWMutex so readers may resolve relations while
// MergeStore registers new ones; the *contents* of the relations are
// protected by core's own epoch/snapshot protocol.
type Store struct {
	mu   sync.RWMutex
	rels map[string]*core.Relation
}

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{rels: make(map[string]*core.Relation)}
}

// Put registers (or replaces) a relation under its scheme name. A
// stored relation is shared database state: it is marked published so
// every later mutation participates in the epoch/snapshot protocol
// (see core.Pin).
func (s *Store) Put(r *core.Relation) {
	r.MarkPublished()
	s.mu.Lock()
	defer s.mu.Unlock()
	s.rels[r.Scheme().Name] = r
}

// Get returns the named relation.
func (s *Store) Get(name string) (*core.Relation, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	r, ok := s.rels[name]
	return r, ok
}

// Names returns the stored relation names, sorted.
func (s *Store) Names() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.rels))
	for n := range s.rels {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Save writes every relation to path in the binary format.
func (s *Store) Save(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("storage: save: %w", err)
	}
	defer f.Close()
	w := &errWriter{w: f}
	w.u32(magic)
	w.u32(formatVersion)
	names := s.Names()
	w.u32(uint32(len(names)))
	if w.err != nil {
		return w.err
	}
	for _, n := range names {
		r, _ := s.Get(n)
		if err := Encode(f, r); err != nil {
			return err
		}
	}
	return f.Sync()
}

// Load reads a store written by Save.
func Load(path string) (*Store, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("storage: load: %w", err)
	}
	defer f.Close()
	r := &errReader{r: f}
	if m := r.u32(); r.err == nil && m != magic {
		return nil, fmt.Errorf("storage: bad store magic %#x", m)
	}
	if v := r.u32(); r.err == nil && v != formatVersion {
		return nil, fmt.Errorf("storage: unsupported store version %d", v)
	}
	n := r.u32()
	if r.err != nil {
		return nil, r.err
	}
	s := NewStore()
	for i := uint32(0); i < n; i++ {
		rel, err := Decode(f)
		if err != nil {
			return nil, fmt.Errorf("storage: load relation %d: %w", i, err)
		}
		s.Put(rel)
	}
	s.RebuildIndexes()
	return s, nil
}

// MergeStore merges every relation of src into s as one atomic
// cross-relation write group. A relation whose name already exists in
// s must render the identical scheme — attributes with their domains,
// interpolation and lifespans, and the same key — and receives src's
// tuples with history-merging semantics: a tuple sharing a key merges
// with the existing history, a contradicting one fails the whole
// merge. A name new to s is built as a private relation, filled inside
// the same group commit, and registered only after the commit
// succeeds, so readers never resolve a half-loaded (or, on failure, a
// phantom) relation. Either the whole group publishes — one epoch
// tick; a reader pinning the existing relations sees every merge or
// none — or an error leaves s exactly as it was.
func (s *Store) MergeStore(src *Store) error {
	// Validate scheme compatibility before staging anything. The
	// canonical scheme rendering covers everything tuple validity
	// depends on: attribute names, order, domains, interpolation,
	// attribute lifespans (ALS) and the key set.
	for _, name := range src.Names() {
		sr, _ := src.Get(name)
		if dr, ok := s.Get(name); ok {
			if dr.Scheme().String() != sr.Scheme().String() {
				return fmt.Errorf("storage: merge: relation %s: schemes differ:\n  have %s\n  got  %s",
					name, dr.Scheme(), sr.Scheme())
			}
		}
	}
	g := core.NewWriteGroup()
	var fresh []*core.Relation
	for _, name := range src.Names() {
		sr, _ := src.Get(name)
		if dr, ok := s.Get(name); ok {
			for _, t := range sr.Tuples() {
				g.InsertMerging(dr, t)
			}
		} else {
			// Built privately, filled by the group, registered below only
			// once the commit has succeeded: unreachable until complete.
			nr := core.NewRelation(sr.Scheme())
			fresh = append(fresh, nr)
			g.InsertBatch(nr, sr.Tuples())
		}
	}
	if err := g.Commit(); err != nil {
		// Nothing was applied to s; the unregistered fresh relations are
		// simply dropped.
		return fmt.Errorf("storage: merge: %w", err)
	}
	for _, nr := range fresh {
		s.Put(nr)
	}
	s.RebuildIndexes()
	return nil
}

// RebuildIndexes eagerly constructs the query engine's lifespan interval
// index and key hash indexes for every stored relation, so a freshly
// loaded database answers its first indexed query at full speed. Load
// and the text-format loader call it; it is idempotent.
func (s *Store) RebuildIndexes() {
	if IndexBuilder == nil {
		return
	}
	// Snapshot the relation set first: index building takes catalog and
	// relation locks, which should not nest inside the store's.
	s.mu.RLock()
	rels := make([]*core.Relation, 0, len(s.rels))
	for _, r := range s.rels {
		rels = append(rels, r)
	}
	s.mu.RUnlock()
	for _, r := range rels {
		IndexBuilder(r)
	}
}

// SizeBytes estimates the logical storage footprint of a historical
// relation under the same accounting rules as the cube and tuplestamp
// baselines (experiment E10): per tuple, its lifespan intervals at 16
// bytes each; per attribute value, one entry per representation-level
// step — 16 bytes of interval plus the scalar payload (8 bytes, strings
// at length). Constant key values cost a single entry regardless of
// lifespan length, which is exactly the economy the paper's
// attribute-level timestamping buys.
func SizeBytes(r *core.Relation) int64 {
	var total int64
	for _, t := range r.Tuples() {
		total += int64(t.Lifespan().NumIntervals()) * 16
		for _, a := range r.Scheme().Attrs {
			f := t.Value(a.Name)
			f.Steps(func(_ chronon.Interval, v value.Value) bool {
				total += 16
				if v.Kind() == value.KindString {
					total += int64(len(v.AsString()))
				} else {
					total += 8
				}
				return true
			})
		}
	}
	return total
}
