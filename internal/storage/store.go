package storage

import (
	"fmt"
	"os"
	"sort"

	"repro/internal/chronon"
	"repro/internal/core"
	"repro/internal/value"
)

// IndexBuilder is installed by internal/engine's init (storage cannot
// import the engine without cycling through hql): it eagerly builds the
// engine's lifespan interval index and key hash indexes for a relation.
// Programs that link the engine get index-warm stores from Load and
// ParseText; programs that don't simply skip the warm-up.
var IndexBuilder func(*core.Relation)

// Store is a minimal heap-file style database: a set of named historical
// relations that can be persisted to and reloaded from a single file.
// It stands in for the paper's physical level in the examples and the
// CLI; durability and concurrency control are out of the paper's scope.
type Store struct {
	rels map[string]*core.Relation
}

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{rels: make(map[string]*core.Relation)}
}

// Put registers (or replaces) a relation under its scheme name. A
// stored relation is shared database state: it is marked published so
// every later mutation participates in the epoch/snapshot protocol
// (see core.Pin).
func (s *Store) Put(r *core.Relation) {
	r.MarkPublished()
	s.rels[r.Scheme().Name] = r
}

// Get returns the named relation.
func (s *Store) Get(name string) (*core.Relation, bool) {
	r, ok := s.rels[name]
	return r, ok
}

// Names returns the stored relation names, sorted.
func (s *Store) Names() []string {
	out := make([]string, 0, len(s.rels))
	for n := range s.rels {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Save writes every relation to path in the binary format.
func (s *Store) Save(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("storage: save: %w", err)
	}
	defer f.Close()
	w := &errWriter{w: f}
	w.u32(magic)
	w.u32(formatVersion)
	names := s.Names()
	w.u32(uint32(len(names)))
	if w.err != nil {
		return w.err
	}
	for _, n := range names {
		if err := Encode(f, s.rels[n]); err != nil {
			return err
		}
	}
	return f.Sync()
}

// Load reads a store written by Save.
func Load(path string) (*Store, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("storage: load: %w", err)
	}
	defer f.Close()
	r := &errReader{r: f}
	if m := r.u32(); r.err == nil && m != magic {
		return nil, fmt.Errorf("storage: bad store magic %#x", m)
	}
	if v := r.u32(); r.err == nil && v != formatVersion {
		return nil, fmt.Errorf("storage: unsupported store version %d", v)
	}
	n := r.u32()
	if r.err != nil {
		return nil, r.err
	}
	s := NewStore()
	for i := uint32(0); i < n; i++ {
		rel, err := Decode(f)
		if err != nil {
			return nil, fmt.Errorf("storage: load relation %d: %w", i, err)
		}
		s.Put(rel)
	}
	s.RebuildIndexes()
	return s, nil
}

// RebuildIndexes eagerly constructs the query engine's lifespan interval
// index and key hash indexes for every stored relation, so a freshly
// loaded database answers its first indexed query at full speed. Load
// and the text-format loader call it; it is idempotent.
func (s *Store) RebuildIndexes() {
	if IndexBuilder == nil {
		return
	}
	for _, r := range s.rels {
		IndexBuilder(r)
	}
}

// SizeBytes estimates the logical storage footprint of a historical
// relation under the same accounting rules as the cube and tuplestamp
// baselines (experiment E10): per tuple, its lifespan intervals at 16
// bytes each; per attribute value, one entry per representation-level
// step — 16 bytes of interval plus the scalar payload (8 bytes, strings
// at length). Constant key values cost a single entry regardless of
// lifespan length, which is exactly the economy the paper's
// attribute-level timestamping buys.
func SizeBytes(r *core.Relation) int64 {
	var total int64
	for _, t := range r.Tuples() {
		total += int64(t.Lifespan().NumIntervals()) * 16
		for _, a := range r.Scheme().Attrs {
			f := t.Value(a.Name)
			f.Steps(func(_ chronon.Interval, v value.Value) bool {
				total += 16
				if v.Kind() == value.KindString {
					total += int64(len(v.AsString()))
				} else {
					total += 8
				}
				return true
			})
		}
	}
	return total
}
