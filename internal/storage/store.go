package storage

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/chronon"
	"repro/internal/core"
	"repro/internal/value"
	"repro/internal/wal"
)

// IndexBuilder is installed by internal/engine's init (storage cannot
// import the engine without cycling through hql): it eagerly builds the
// engine's lifespan interval index and key hash indexes for a relation.
// Programs that link the engine get index-warm stores from Load and
// ParseText; programs that don't simply skip the warm-up.
var IndexBuilder func(*core.Relation)

// Store is a minimal heap-file style database: a set of named historical
// relations that can be persisted to and reloaded from a single file.
// It stands in for the paper's physical level in the examples and the
// CLI. The name map itself is guarded by an RWMutex so readers may
// resolve relations while MergeStore registers new ones; the *contents*
// of the relations are protected by core's own epoch/snapshot protocol.
//
// A store opened with OpenDurable additionally carries a write-ahead
// log: every committed core.WriteGroup touching its relations is
// fsynced to the log before it publishes, Checkpoint snapshots the
// store and truncates the log, and OpenDurable replays whatever the
// last checkpoint missed. See docs/DURABILITY.md.
type Store struct {
	mu   sync.RWMutex
	rels map[string]*core.Relation

	// Durable-mode state (nil/zero for plain in-memory stores). log is
	// set once by OpenDurable and never reset to nil — after Close, a
	// racing commit hook fails on the closed log instead of dereferencing
	// nil. lsn is the WAL sequence number the in-memory state is
	// consistent through; it moves under the publish lock's shared side
	// (commit hook) and is read exactly under its exclusive side (pinAll).
	dir       string
	log       *wal.Log
	lsn       atomic.Uint64
	replaying atomic.Bool
}

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{rels: make(map[string]*core.Relation)}
}

// Put registers (or replaces) a relation under its scheme name. A
// stored relation is shared database state: it is marked published so
// every later mutation participates in the epoch/snapshot protocol
// (see core.Pin). On a durable store the relation is also tracked for
// write-ahead logging (and a replaced relation untracked).
func (s *Store) Put(r *core.Relation) {
	r.MarkPublished()
	s.mu.Lock()
	name := r.Scheme().Name
	old := s.rels[name]
	s.rels[name] = r
	s.mu.Unlock()
	if s.log != nil {
		if old != nil && old != r {
			durableByRel.Delete(old)
		}
		durableByRel.Store(r, s)
	}
}

// Get returns the named relation.
func (s *Store) Get(name string) (*core.Relation, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	r, ok := s.rels[name]
	return r, ok
}

// Names returns the stored relation names, sorted.
func (s *Store) Names() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.rels))
	for n := range s.rels {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// pinnedStore is one consistent cut of the whole store: every relation
// pinned in a single core.PinAtomic, plus the WAL sequence number the
// cut is consistent through. Because the commit hook appends to the
// log and advances lsn under the shared side of the publish lock, and
// the pin holds its exclusive side, the LSN read here matches the
// pinned tuple state exactly — no group is half in.
type pinnedStore struct {
	names []string
	vers  []core.RelVersion
	lsn   uint64
}

// pinAll captures a pinnedStore cut of s.
func (s *Store) pinAll() pinnedStore {
	s.mu.RLock()
	names := make([]string, 0, len(s.rels))
	for n := range s.rels {
		names = append(names, n)
	}
	sort.Strings(names)
	rels := make([]*core.Relation, len(names))
	for i, n := range names {
		rels[i] = s.rels[n]
	}
	s.mu.RUnlock()
	var lsn uint64
	_, vers, _ := core.PinAtomic(func() ([]*core.Relation, error) {
		lsn = s.lsn.Load()
		return rels, nil
	})
	return pinnedStore{names: names, vers: vers, lsn: lsn}
}

// saveWrapWriter, when non-nil, wraps the save file before anything is
// written — a test seam for injecting write failures into Save without
// touching the filesystem layer.
var saveWrapWriter func(io.Writer) io.Writer

// Save writes every relation to path in the binary format. The write
// is atomic — a temp file in path's directory, fsynced, renamed over
// the old file, directory fsynced — so a crash or error mid-save never
// destroys the previous good store. The tuple state is one pinned cut:
// a save racing a write group sees it entirely or not at all.
func (s *Store) Save(path string) error {
	return savePinned(path, s.pinAll())
}

func savePinned(path string, cut pinnedStore) (err error) {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, ".hrdm-save-*")
	if err != nil {
		return fmt.Errorf("storage: save: %w", err)
	}
	tmp := f.Name()
	defer func() {
		if err != nil {
			f.Close()
			os.Remove(tmp)
		}
	}()
	var out io.Writer = f
	if saveWrapWriter != nil {
		out = saveWrapWriter(f)
	}
	w := &errWriter{w: out}
	w.u32(magic)
	w.u32(storeVersion2)
	w.u64(cut.lsn)
	w.u32(uint32(len(cut.names)))
	for _, v := range cut.vers {
		encodePinned(w, v)
	}
	if w.err != nil {
		return fmt.Errorf("storage: save: %w", w.err)
	}
	if err := f.Sync(); err != nil {
		return fmt.Errorf("storage: save: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("storage: save: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("storage: save: %w", err)
	}
	return syncDir(dir)
}

// Load reads a store written by Save and warms its indexes.
func Load(path string) (*Store, error) {
	s, _, err := loadFile(path)
	if err != nil {
		return nil, err
	}
	s.RebuildIndexes()
	return s, nil
}

// loadFile reads a store file (header version 1 or 2), returning the
// snapshot's WAL sequence number (0 for version-1 files) and leaving
// index warm-up to the caller.
func loadFile(path string) (*Store, uint64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, 0, fmt.Errorf("storage: load: %w", err)
	}
	defer f.Close()
	r := &errReader{r: f}
	if m := r.u32(); r.err == nil && m != magic {
		return nil, 0, fmt.Errorf("storage: bad store magic %#x", m)
	}
	ver := r.u32()
	var lsn uint64
	switch {
	case r.err != nil:
	case ver == formatVersion:
	case ver == storeVersion2:
		lsn = r.u64()
	default:
		return nil, 0, fmt.Errorf("storage: unsupported store version %d", ver)
	}
	n := r.u32()
	if r.err != nil {
		return nil, 0, r.err
	}
	s := NewStore()
	for i := uint32(0); i < n; i++ {
		rel, err := Decode(f)
		if err != nil {
			return nil, 0, fmt.Errorf("storage: load relation %d: %w", i, err)
		}
		s.Put(rel)
	}
	return s, lsn, nil
}

// syncDir fsyncs a directory so a rename inside it is durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("storage: sync dir: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("storage: sync dir: %w", err)
	}
	return nil
}

// MergeStore merges every relation of src into s as one atomic
// cross-relation write group. A relation whose name already exists in
// s must render the identical scheme — attributes with their domains,
// interpolation and lifespans, and the same key — and receives src's
// tuples with history-merging semantics: a tuple sharing a key merges
// with the existing history, a contradicting one fails the whole
// merge. A name new to s is built as a private relation, filled inside
// the same group commit, and registered only after the commit
// succeeds, so readers never resolve a half-loaded (or, on failure, a
// phantom) relation. Either the whole group publishes — one epoch
// tick; a reader pinning the existing relations sees every merge or
// none — or an error leaves s exactly as it was.
func (s *Store) MergeStore(src *Store) error {
	// Validate scheme compatibility before staging anything. The
	// canonical scheme rendering covers everything tuple validity
	// depends on: attribute names, order, domains, interpolation,
	// attribute lifespans (ALS) and the key set.
	for _, name := range src.Names() {
		sr, _ := src.Get(name)
		if dr, ok := s.Get(name); ok {
			if dr.Scheme().String() != sr.Scheme().String() {
				return fmt.Errorf("storage: merge: relation %s: schemes differ:\n  have %s\n  got  %s",
					name, dr.Scheme(), sr.Scheme())
			}
		}
	}
	// One pinned cut of the source: a merge racing writers to src copies
	// a consistent snapshot, never a torn one.
	cut := src.pinAll()
	g := core.NewWriteGroup()
	var fresh []*core.Relation
	for i, name := range cut.names {
		sv := cut.vers[i]
		if dr, ok := s.Get(name); ok {
			for _, t := range sv.Tuples() {
				g.InsertMerging(dr, t)
			}
		} else {
			// Built privately, filled by the group, registered below only
			// once the commit has succeeded: unreachable until complete.
			nr := core.NewRelation(sv.Rel().Scheme())
			fresh = append(fresh, nr)
			g.InsertBatch(nr, sv.Tuples())
		}
	}
	// A durable store must know the fresh relations before the commit
	// hook fires, or their ops would miss the WAL.
	s.trackRelations(fresh)
	if err := g.Commit(); err != nil {
		// Nothing was applied to s; the unregistered fresh relations are
		// simply dropped.
		s.untrackRelations(fresh)
		return fmt.Errorf("storage: merge: %w", err)
	}
	for _, nr := range fresh {
		s.Put(nr)
	}
	s.RebuildIndexes()
	return nil
}

// RebuildIndexes eagerly constructs the query engine's lifespan interval
// index and key hash indexes for every stored relation, so a freshly
// loaded database answers its first indexed query at full speed. Load
// and the text-format loader call it; it is idempotent.
func (s *Store) RebuildIndexes() {
	if IndexBuilder == nil {
		return
	}
	// Snapshot the relation set first: index building takes catalog and
	// relation locks, which should not nest inside the store's.
	s.mu.RLock()
	rels := make([]*core.Relation, 0, len(s.rels))
	for _, r := range s.rels {
		rels = append(rels, r)
	}
	s.mu.RUnlock()
	for _, r := range rels {
		IndexBuilder(r)
	}
}

// SizeBytes estimates the logical storage footprint of a historical
// relation under the same accounting rules as the cube and tuplestamp
// baselines (experiment E10): per tuple, its lifespan intervals at 16
// bytes each; per attribute value, one entry per representation-level
// step — 16 bytes of interval plus the scalar payload (8 bytes, strings
// at length). Constant key values cost a single entry regardless of
// lifespan length, which is exactly the economy the paper's
// attribute-level timestamping buys.
func SizeBytes(r *core.Relation) int64 {
	_, vers := core.Pin(r)
	var total int64
	for _, t := range vers[0].Tuples() {
		total += int64(t.Lifespan().NumIntervals()) * 16
		for _, a := range r.Scheme().Attrs {
			f := t.Value(a.Name)
			f.Steps(func(_ chronon.Interval, v value.Value) bool {
				total += 16
				if v.Kind() == value.KindString {
					total += int64(len(v.AsString()))
				} else {
					total += 8
				}
				return true
			})
		}
	}
	return total
}
