package storage

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/chronon"
	"repro/internal/core"
	"repro/internal/lifespan"
	"repro/internal/schema"
	"repro/internal/value"
)

// This file implements a human-editable text format for historical
// databases, so users can author relations for the CLI without writing
// Go. The format mirrors the model directly:
//
//	relation EMP key NAME
//	  attr NAME string  {[0,99]}
//	  attr SAL  int     {[0,99]} step
//	  attr DEPT string  {[0,99]} step
//	tuple {[0,9]}
//	  NAME = "John"  @ {[0,9]}
//	  SAL  = 30000   @ {[0,4]}
//	  SAL  = 34000   @ {[5,9]}
//	  DEPT = "Toys"  @ {[0,9]}
//	tuple {[3,19]}
//	  ...
//
// Blank lines and lines starting with '#' are ignored. A `tuple` block
// belongs to the most recent `relation`. Value kinds: int, float,
// string, bool, time (time constants written @t). Each assignment names
// the lifespan over which the value holds.

// ParseText reads a textual database into a Store.
func ParseText(r io.Reader) (*Store, error) {
	st := NewStore()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)

	var (
		curScheme  *schema.Scheme
		curAttrs   []schema.Attribute
		curKey     []string
		curName    string
		curRel     *core.Relation
		curBuilder *core.TupleBuilder
		pending    []*core.Tuple
		seenKeys   map[string]bool
		lineNo     int
	)
	// Every relation section stages its tuples into one write group,
	// committed after the whole file parses: a multi-relation load is a
	// single publication, so a reader pinning a snapshot mid-load sees
	// either the entire file's contents or none of it — never relation
	// EMP loaded and its companion DEPT still empty.
	group := core.NewWriteGroup()
	finishScheme := func() error {
		if curName == "" || curScheme != nil {
			return nil
		}
		s, err := schema.New(curName, curKey, curAttrs...)
		if err != nil {
			return err
		}
		curScheme = s
		curRel = core.NewRelation(s)
		seenKeys = make(map[string]bool)
		st.Put(curRel)
		return nil
	}
	finishTuple := func() error {
		if curBuilder == nil {
			return nil
		}
		t, err := curBuilder.Build()
		if err != nil {
			return err
		}
		curBuilder = nil
		// Duplicate keys are detected here, while the parser is still
		// near the offending tuple block, so the error carries a useful
		// line number; the batch flush below would only surface them at
		// the end of the relation section. The check mirrors the
		// relation's own canonical key encoding.
		parts := make([]string, len(curRel.Scheme().Key))
		for i, k := range curRel.Scheme().Key {
			parts[i] = t.KeyValue(k).String()
		}
		if ks := value.EncodeKey(parts); seenKeys[ks] {
			return fmt.Errorf("relation %s: duplicate key %s", curRel.Scheme().Name, ks)
		} else {
			seenKeys[ks] = true
		}
		// Tuples accumulate per relation and stage as one batch when the
		// relation section ends; the group commit below publishes every
		// section at once — one version bump and one coalesced index
		// merge per relation, one epoch tick for the whole file.
		pending = append(pending, t)
		return nil
	}
	flushRelation := func() error {
		if err := finishTuple(); err != nil {
			return err
		}
		if curRel == nil || len(pending) == 0 {
			return nil
		}
		group.InsertBatch(curRel, pending)
		pending = nil
		seenKeys = nil
		return nil
	}
	fail := func(format string, args ...any) error {
		return fmt.Errorf("storage: text line %d: %s", lineNo, fmt.Sprintf(format, args...))
	}

	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := splitFields(line)
		switch fields[0] {
		case "relation":
			if err := flushRelation(); err != nil {
				return nil, fail("%v", err)
			}
			// Register the previous relation even if it had no tuples.
			if err := finishScheme(); err != nil {
				return nil, fail("%v", err)
			}
			// relation NAME key K1 [K2 ...]
			if len(fields) < 4 || fields[2] != "key" {
				return nil, fail("want: relation NAME key K1 [K2...]")
			}
			curName = fields[1]
			curKey = fields[3:]
			curScheme, curRel, curAttrs = nil, nil, nil
		case "attr":
			// attr NAME kind {lifespan} [interp]
			if curScheme != nil {
				return nil, fail("attr after tuples began")
			}
			if len(fields) < 4 {
				return nil, fail("want: attr NAME kind {lifespan} [interp]")
			}
			dom, err := domainByName(fields[2])
			if err != nil {
				return nil, fail("%v", err)
			}
			ls, err := lifespan.Parse(fields[3])
			if err != nil {
				return nil, fail("%v", err)
			}
			a := schema.Attribute{Name: fields[1], Domain: dom, Lifespan: ls}
			if len(fields) > 4 {
				a.Interp = fields[4]
			}
			curAttrs = append(curAttrs, a)
		case "tuple":
			// tuple {lifespan}
			if err := finishScheme(); err != nil {
				return nil, fail("%v", err)
			}
			if err := finishTuple(); err != nil {
				return nil, fail("%v", err)
			}
			if curRel == nil {
				return nil, fail("tuple before any relation")
			}
			if len(fields) != 2 {
				return nil, fail("want: tuple {lifespan}")
			}
			ls, err := lifespan.Parse(fields[1])
			if err != nil {
				return nil, fail("%v", err)
			}
			curBuilder = core.NewTupleBuilder(curRel.Scheme(), ls)
		default:
			// ATTR = value @ {lifespan}
			if curBuilder == nil {
				return nil, fail("assignment outside a tuple block")
			}
			if len(fields) != 5 || fields[1] != "=" || fields[3] != "@" {
				return nil, fail("want: ATTR = value @ {lifespan}")
			}
			attr, ok := curRel.Scheme().Attr(fields[0])
			if !ok {
				return nil, fail("unknown attribute %s", fields[0])
			}
			v, err := parseValue(fields[2], attr.Domain.Kind)
			if err != nil {
				return nil, fail("%v", err)
			}
			ls, err := lifespan.Parse(fields[4])
			if err != nil {
				return nil, fail("%v", err)
			}
			for _, iv := range ls.Intervals() {
				curBuilder.Set(fields[0], iv.Lo, iv.Hi, v)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if err := flushRelation(); err != nil {
		return nil, fmt.Errorf("storage: text: %w", err)
	}
	if err := finishScheme(); err != nil {
		return nil, fmt.Errorf("storage: text: %w", err)
	}
	if err := group.Commit(); err != nil {
		return nil, fmt.Errorf("storage: text: %w", err)
	}
	st.RebuildIndexes()
	return st, nil
}

// splitFields splits on whitespace but keeps quoted strings and brace
// groups intact.
func splitFields(line string) []string {
	var out []string
	i := 0
	for i < len(line) {
		for i < len(line) && (line[i] == ' ' || line[i] == '\t') {
			i++
		}
		if i >= len(line) {
			break
		}
		start := i
		switch line[i] {
		case '"':
			i++
			for i < len(line) && line[i] != '"' {
				if line[i] == '\\' {
					i++
				}
				i++
			}
			if i < len(line) {
				i++ // closing quote
			}
			if i > len(line) { // trailing backslash ran past the end
				i = len(line)
			}
		case '{':
			depth := 0
			for i < len(line) {
				if line[i] == '{' {
					depth++
				}
				if line[i] == '}' {
					depth--
					if depth == 0 {
						i++
						break
					}
				}
				i++
			}
		default:
			for i < len(line) && line[i] != ' ' && line[i] != '\t' {
				i++
			}
		}
		out = append(out, line[start:i])
	}
	return out
}

func domainByName(name string) (value.Domain, error) {
	switch name {
	case "int", "integers":
		return value.Ints, nil
	case "float", "reals":
		return value.Floats, nil
	case "string", "strings":
		return value.Strings, nil
	case "bool", "booleans":
		return value.Bools, nil
	case "time", "times":
		return value.Times, nil
	}
	return value.Domain{}, fmt.Errorf("unknown domain %q", name)
}

func parseValue(tok string, kind value.Kind) (value.Value, error) {
	switch kind {
	case value.KindString:
		s, err := strconv.Unquote(tok)
		if err != nil {
			return value.Value{}, fmt.Errorf("bad string %s: %w", tok, err)
		}
		return value.String_(s), nil
	case value.KindInt:
		n, err := strconv.ParseInt(tok, 10, 64)
		if err != nil {
			return value.Value{}, fmt.Errorf("bad int %s: %w", tok, err)
		}
		return value.Int(n), nil
	case value.KindFloat:
		f, err := strconv.ParseFloat(tok, 64)
		if err != nil {
			return value.Value{}, fmt.Errorf("bad float %s: %w", tok, err)
		}
		return value.Float(f), nil
	case value.KindBool:
		switch tok {
		case "true":
			return value.Bool(true), nil
		case "false":
			return value.Bool(false), nil
		}
		return value.Value{}, fmt.Errorf("bad bool %s", tok)
	case value.KindTime:
		t, err := chronon.ParseTime(strings.TrimPrefix(tok, "@"))
		if err != nil {
			return value.Value{}, err
		}
		return value.TimeVal(t), nil
	}
	return value.Value{}, fmt.Errorf("unsupported kind %v", kind)
}

// textWriter folds write errors the way errWriter does for the binary
// codec: the first failure sticks, later prints are no-ops, and the
// dump surfaces it once at the end — no line can be silently dropped.
type textWriter struct {
	w   io.Writer
	err error
}

func (tw *textWriter) printf(format string, args ...any) {
	if tw.err != nil {
		return
	}
	_, tw.err = fmt.Fprintf(tw.w, format, args...)
}

// DumpText writes a Store in the textual format; ParseText(DumpText(s))
// reproduces s exactly. The tuple state is one pinned cut of the whole
// store (a dump racing a write group sees it entirely or not at all),
// and every write error — including the attr and tuple header lines —
// propagates, so a full disk yields an error instead of a silently
// truncated dump that ParseText would later reject.
func DumpText(w io.Writer, st *Store) error {
	cut := st.pinAll()
	tw := &textWriter{w: w}
	for i := range cut.vers {
		rv := cut.vers[i]
		s := rv.Rel().Scheme()
		tw.printf("relation %s key %s\n", s.Name, strings.Join(s.Key, " "))
		for _, a := range s.Attrs {
			interp := ""
			if a.Interp != "" {
				interp = " " + a.Interp
			}
			tw.printf("  attr %s %s %s%s\n", a.Name, kindName(a.Domain.Kind), a.Lifespan, interp)
		}
		for _, t := range rv.Tuples() {
			tw.printf("tuple %s\n", t.Lifespan())
			for _, a := range s.Attrs {
				t.Value(a.Name).Steps(func(iv chronon.Interval, v value.Value) bool {
					tw.printf("  %s = %s @ %s\n", a.Name, renderValue(v), lifespan.New(iv))
					return tw.err == nil
				})
			}
		}
		tw.printf("\n")
		if tw.err != nil {
			return tw.err
		}
	}
	return tw.err
}

func kindName(k value.Kind) string {
	switch k {
	case value.KindInt:
		return "int"
	case value.KindFloat:
		return "float"
	case value.KindString:
		return "string"
	case value.KindBool:
		return "bool"
	case value.KindTime:
		return "time"
	}
	return "invalid"
}

func renderValue(v value.Value) string {
	// The display form is already parseable for every kind.
	return v.String()
}
