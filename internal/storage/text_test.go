package storage

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/value"
)

const sampleText = `
# The paper's running example.
relation EMP key NAME
  attr NAME string {[0,99]}
  attr SAL int {[0,99]} step
  attr DEPT string {[0,99]} step
tuple {[0,9]}
  NAME = "John" @ {[0,9]}
  SAL = 30000 @ {[0,4]}
  SAL = 34000 @ {[5,9]}
  DEPT = "Toys" @ {[0,9]}
tuple {[0,3],[8,14]}
  NAME = "Ahmed" @ {[0,3],[8,14]}
  SAL = 30000 @ {[0,3]}
  SAL = 31000 @ {[8,14]}
  DEPT = "Toys" @ {[0,3],[8,14]}

relation SHIP key ID
  attr ID int {[0,99]}
  attr SHIPDATE time {[0,99]}
tuple {[0,19]}
  ID = 1 @ {[0,19]}
  SHIPDATE = @7 @ {[0,19]}
`

func TestParseText(t *testing.T) {
	st, err := ParseText(strings.NewReader(sampleText))
	if err != nil {
		t.Fatal(err)
	}
	if got := st.Names(); len(got) != 2 || got[0] != "EMP" || got[1] != "SHIP" {
		t.Fatalf("Names = %v", got)
	}
	emp, _ := st.Get("EMP")
	if emp.Cardinality() != 2 {
		t.Fatalf("EMP cardinality = %d", emp.Cardinality())
	}
	john, ok := emp.Lookup(`"John"`)
	if !ok {
		t.Fatal("John missing")
	}
	if v, _ := john.At("SAL", 7); v.AsInt() != 34000 {
		t.Error("John's raise lost")
	}
	ahmed, _ := emp.Lookup(`"Ahmed"`)
	if ahmed.Lifespan().NumIntervals() != 2 {
		t.Error("Ahmed's gapped lifespan lost")
	}
	sal, _ := emp.Scheme().Attr("SAL")
	if sal.Interp != "step" || sal.Domain != value.Ints {
		t.Errorf("SAL attribute metadata: %+v", sal)
	}
	ship, _ := st.Get("SHIP")
	tp := ship.Tuples()[0]
	if v, _ := tp.At("SHIPDATE", 3); v.AsTime() != 7 {
		t.Error("time-valued attribute lost")
	}
}

func TestTextRoundTrip(t *testing.T) {
	st, err := ParseText(strings.NewReader(sampleText))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := DumpText(&buf, st); err != nil {
		t.Fatal(err)
	}
	back, err := ParseText(&buf)
	if err != nil {
		t.Fatalf("reparse: %v\ndump was:\n%s", err, buf.String())
	}
	for _, name := range st.Names() {
		orig, _ := st.Get(name)
		re, ok := back.Get(name)
		if !ok || !re.Equal(orig) {
			t.Errorf("round trip changed %s:\n%s\nvs\n%s", name, re, orig)
		}
	}
}

func TestParseTextErrors(t *testing.T) {
	cases := []struct {
		name, in, frag string
	}{
		{"bad relation", "relation EMP\n", "want: relation"},
		{"attr after tuple", "relation R key K\nattr K string {[0,9]}\ntuple {[0,9]}\nK = \"a\" @ {[0,9]}\nattr X int {[0,9]}\n", "tuples began"},
		{"tuple before relation", "tuple {[0,9]}\n", "before any relation"},
		{"bad lifespan", "relation R key K\nattr K string [0,9]\n", "lifespan"},
		{"unknown domain", "relation R key K\nattr K blob {[0,9]}\n", "unknown domain"},
		{"unknown attr", "relation R key K\nattr K string {[0,9]}\ntuple {[0,9]}\nX = 1 @ {[0,9]}\n", "unknown attribute"},
		{"bad assignment", "relation R key K\nattr K string {[0,9]}\ntuple {[0,9]}\nK \"a\" {[0,9]}\n", "want: ATTR"},
		{"bad int", "relation R key K\nattr K int {[0,9]}\ntuple {[0,9]}\nK = xyz @ {[0,9]}\n", "bad int"},
		{"bad string", "relation R key K\nattr K string {[0,9]}\ntuple {[0,9]}\nK = noquotes @ {[0,9]}\n", "bad string"},
		{"bad bool", "relation R key K\nattr K bool {[0,9]}\ntuple {[0,9]}\nK = maybe @ {[0,9]}\n", "bad bool"},
		{"key not covering", "relation R key K\nattr K string {[0,9]}\ntuple {[0,9]}\nK = \"a\" @ {[0,3]}\n", "key attribute"},
		{"duplicate key", "relation R key K\nattr K string {[0,9]}\ntuple {[0,3]}\nK = \"a\" @ {[0,3]}\ntuple {[5,9]}\nK = \"a\" @ {[5,9]}\n", "duplicate key"},
		{"assignment outside tuple", "relation R key K\nattr K string {[0,9]}\nK = \"a\" @ {[0,9]}\n", "outside a tuple"},
	}
	for _, c := range cases {
		_, err := ParseText(strings.NewReader(c.in))
		if err == nil {
			t.Errorf("%s: expected error", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.frag) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.frag)
		}
	}
}

func TestParseTextEmptyRelation(t *testing.T) {
	st, err := ParseText(strings.NewReader("relation R key K\nattr K string {[0,9]}\n"))
	if err != nil {
		t.Fatal(err)
	}
	r, ok := st.Get("R")
	if !ok || r.Cardinality() != 0 {
		t.Errorf("empty relation should exist with zero tuples: %v", r)
	}
}

func TestSplitFields(t *testing.T) {
	got := splitFields(`NAME = "two words" @ {[0,3],[5,9]}`)
	want := []string{"NAME", "=", `"two words"`, "@", "{[0,3],[5,9]}"}
	if len(got) != len(want) {
		t.Fatalf("fields = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("field %d = %q, want %q", i, got[i], want[i])
		}
	}
}
