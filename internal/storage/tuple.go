package storage

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/lifespan"
	"repro/internal/schema"
)

// ParseTuple parses one tuple block of the text format (see ParseText)
// against an existing scheme: a `tuple {lifespan}` header followed by
// `ATTR = value @ {lifespan}` assignment lines. Statements may be
// separated by newlines or semicolons, so a whole tuple fits in one
// wire-protocol string:
//
//	tuple {[0,9]}; NAME = "John" @ {[0,9]}; SAL = 30000 @ {[0,9]}
//
// It builds the tuple without touching any relation — callers stage the
// result into a core.WriteGroup (the server's `stage` op) or insert it
// directly.
func ParseTuple(sc *schema.Scheme, spec string) (*core.Tuple, error) {
	var b *core.TupleBuilder
	for _, raw := range strings.FieldsFunc(spec, func(r rune) bool { return r == '\n' || r == ';' }) {
		line := strings.TrimSpace(raw)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := splitFields(line)
		if fields[0] == "tuple" {
			if b != nil {
				return nil, fmt.Errorf("storage: tuple spec: second tuple header (one tuple per spec)")
			}
			if len(fields) != 2 {
				return nil, fmt.Errorf("storage: tuple spec: want: tuple {lifespan}")
			}
			ls, err := lifespan.Parse(fields[1])
			if err != nil {
				return nil, fmt.Errorf("storage: tuple spec: %w", err)
			}
			b = core.NewTupleBuilder(sc, ls)
			continue
		}
		if b == nil {
			return nil, fmt.Errorf("storage: tuple spec: assignment before the tuple header")
		}
		if len(fields) != 5 || fields[1] != "=" || fields[3] != "@" {
			return nil, fmt.Errorf("storage: tuple spec: want: ATTR = value @ {lifespan}")
		}
		attr, ok := sc.Attr(fields[0])
		if !ok {
			return nil, fmt.Errorf("storage: tuple spec: unknown attribute %s", fields[0])
		}
		v, err := parseValue(fields[2], attr.Domain.Kind)
		if err != nil {
			return nil, fmt.Errorf("storage: tuple spec: %w", err)
		}
		ls, err := lifespan.Parse(fields[4])
		if err != nil {
			return nil, fmt.Errorf("storage: tuple spec: %w", err)
		}
		for _, iv := range ls.Intervals() {
			b.Set(fields[0], iv.Lo, iv.Hi, v)
		}
	}
	if b == nil {
		return nil, fmt.Errorf("storage: tuple spec: missing tuple header")
	}
	return b.Build()
}
