package storage

import (
	"strings"
	"testing"

	"repro/internal/chronon"
	"repro/internal/lifespan"
	"repro/internal/schema"
	"repro/internal/value"
)

func tupleScheme() *schema.Scheme {
	full := lifespan.Interval(0, 99)
	return schema.MustNew("EMP", []string{"NAME"},
		schema.Attribute{Name: "NAME", Domain: value.Strings, Lifespan: full},
		schema.Attribute{Name: "SAL", Domain: value.Ints, Lifespan: full, Interp: "step"},
	)
}

// TestParseTuple covers the wire-facing tuple spec format the server's
// `stage` op accepts: semicolon- and newline-separated statements,
// comments, multi-interval lifespans fanned out across assignments.
func TestParseTuple(t *testing.T) {
	sc := tupleScheme()
	tp, err := ParseTuple(sc, `tuple {[0,9]}; NAME = "John" @ {[0,9]}; SAL = 30000 @ {[0,9]}`)
	if err != nil {
		t.Fatalf("ParseTuple: %v", err)
	}
	if got := tp.Lifespan(); !got.Equal(lifespan.Interval(0, 9)) {
		t.Fatalf("lifespan = %v, want [0,9]", got)
	}
	if v, ok := tp.At("SAL", chronon.Time(4)); !ok || !v.Equal(value.Int(30000)) {
		t.Fatalf("SAL@4 = (%v, %v), want 30000", v, ok)
	}

	// Newlines and comments separate statements too, and a
	// multi-interval assignment lifespan sets every interval.
	tp, err = ParseTuple(sc, "# demo tuple\ntuple {[0,3],[8,9]}\nNAME = \"Ada\" @ {[0,3],[8,9]}\nSAL = 7 @ {[0,3],[8,9]}")
	if err != nil {
		t.Fatalf("ParseTuple (newlines): %v", err)
	}
	for _, at := range []chronon.Time{1, 8} {
		if v, ok := tp.At("SAL", at); !ok || !v.Equal(value.Int(7)) {
			t.Fatalf("SAL@%d = (%v, %v), want 7", at, v, ok)
		}
	}
	if _, ok := tp.At("SAL", chronon.Time(5)); ok {
		t.Fatal("SAL defined outside the tuple lifespan")
	}
}

// TestParseTupleErrors walks every documented rejection path.
func TestParseTupleErrors(t *testing.T) {
	sc := tupleScheme()
	cases := []struct {
		name, spec, want string
	}{
		{"empty", "", "missing tuple header"},
		{"comment only", "# nothing here", "missing tuple header"},
		{"second header", "tuple {[0,9]}; tuple {[0,9]}", "second tuple header"},
		{"header arity", "tuple", "want: tuple {lifespan}"},
		{"header lifespan", "tuple {oops}", "parse time"},
		{"assignment first", `NAME = "x" @ {[0,9]}`, "assignment before the tuple header"},
		{"malformed assignment", "tuple {[0,9]}; NAME IS x", "want: ATTR = value @ {lifespan}"},
		{"unknown attribute", `tuple {[0,9]}; NOPE = 1 @ {[0,9]}`, "unknown attribute NOPE"},
		{"bad value", `tuple {[0,9]}; SAL = "words" @ {[0,9]}`, ""},
		{"bad assignment lifespan", `tuple {[0,9]}; SAL = 1 @ {bad}`, "parse time"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := ParseTuple(sc, c.spec)
			if err == nil {
				t.Fatalf("ParseTuple(%q) succeeded, want error", c.spec)
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Fatalf("error = %v, want substring %q", err, c.want)
			}
		})
	}
}
