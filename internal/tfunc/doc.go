// Package tfunc implements the temporal functions of HRDM.
//
// Paper Section 3 defines two families of partial functions over the time
// domain T: TD_i = {f | f : T → D_i}, the partial functions into each
// value domain, and TT = {g | g : T → T}, the partial functions from T
// into itself (backing time-valued attributes). A Func here is one such
// partial function.
//
// Functions are stored at the paper's *representation level*: a sorted
// list of (interval, value) steps, so that a salary constant over [1,100]
// costs one entry rather than one hundred. The *model level* view — a
// total function on its definition lifespan — is recovered through At and,
// for partially-represented functions, through an interpolation function I
// (paper Figure 9 and the surrounding discussion).
package tfunc
