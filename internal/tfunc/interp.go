package tfunc

import (
	"fmt"
	"math"

	"repro/internal/lifespan"
	"repro/internal/value"
)

// Interpolator is the paper's interpolation function I (Section 3,
// Figure 9 discussion): it maps a "partially-represented function" with
// domain S' ⊆ S into a total function on S. The paper leaves I abstract;
// this package ships three concrete instances.
//
// Interpolate must return a function whose domain is exactly target and
// which agrees with f on Domain(f) ∩ target. It reports an error when the
// representation cannot be completed (e.g. target points precede every
// stored value under step interpolation).
type Interpolator interface {
	// Name identifies the interpolator in schemas and diagnostics.
	Name() string
	// Interpolate completes f to a total function on target.
	Interpolate(f Func, target lifespan.Lifespan) (Func, error)
}

// Discrete is the identity interpolation: values exist only where stored.
// Interpolating to a target outside the stored domain is an error. This
// models attributes like TRANSACTION-AMOUNT where no value can be
// inferred between recorded events.
type Discrete struct{}

// Name implements Interpolator.
func (Discrete) Name() string { return "discrete" }

// Interpolate implements Interpolator.
func (Discrete) Interpolate(f Func, target lifespan.Lifespan) (Func, error) {
	if !target.SubsetOf(f.Domain()) {
		missing := target.Minus(f.Domain())
		return Func{}, fmt.Errorf("tfunc: discrete interpolation undefined on %v", missing)
	}
	return f.Restrict(target), nil
}

// StepWise carries each stored value forward until the next stored value
// — the usual assumption for state-like attributes such as SALARY or
// MANAGER ("the salary holds until it is changed"). Target chronons
// before the first stored value are an error.
type StepWise struct{}

// Name implements Interpolator.
func (StepWise) Name() string { return "step" }

// Interpolate implements Interpolator.
func (StepWise) Interpolate(f Func, target lifespan.Lifespan) (Func, error) {
	if target.IsEmpty() {
		return Func{}, nil
	}
	if f.IsNowhereDefined() {
		return Func{}, fmt.Errorf("tfunc: step interpolation of nowhere-defined function")
	}
	if target.Min() < f.Domain().Min() {
		return Func{}, fmt.Errorf("tfunc: step interpolation undefined before first stored value at %v", f.Domain().Min())
	}
	// Extend each step to reach the start of the next step; the last step
	// extends to the end of the target.
	ext := make([]step, len(f.steps))
	copy(ext, f.steps)
	for i := range ext {
		if i+1 < len(ext) {
			ext[i].Iv.Hi = ext[i+1].Iv.Lo.Prev()
		} else if target.Max() > ext[i].Iv.Hi {
			ext[i].Iv.Hi = target.Max()
		}
	}
	total := canonical(ext)
	return total.Restrict(target), nil
}

// Linear interpolates numeric values linearly between stored points and
// carries the last value forward, modelling densely sampled quantities
// such as stock prices. Non-numeric values cause an error. Between two
// steps, interpolation runs from the end of the earlier step (at its
// value) to the start of the later step (at its value).
type Linear struct{}

// Name implements Interpolator.
func (Linear) Name() string { return "linear" }

// Interpolate implements Interpolator.
func (Linear) Interpolate(f Func, target lifespan.Lifespan) (Func, error) {
	if target.IsEmpty() {
		return Func{}, nil
	}
	if f.IsNowhereDefined() {
		return Func{}, fmt.Errorf("tfunc: linear interpolation of nowhere-defined function")
	}
	if target.Min() < f.Domain().Min() {
		return Func{}, fmt.Errorf("tfunc: linear interpolation undefined before first stored value at %v", f.Domain().Min())
	}
	for _, s := range f.steps {
		if k := s.V.Kind(); k != value.KindInt && k != value.KindFloat {
			return Func{}, fmt.Errorf("tfunc: linear interpolation over non-numeric %s values", k)
		}
	}
	var b Builder
	for _, s := range f.steps {
		b.Set(s.Iv.Lo, s.Iv.Hi, s.V)
	}
	// Fill the gaps between consecutive steps point by point. Gaps in
	// database histories are short (they are representation-level
	// ellipses), so pointwise filling is acceptable; the result re-coalesces
	// in Build.
	for i := 0; i+1 < len(f.steps); i++ {
		a, c := f.steps[i], f.steps[i+1]
		gapLo, gapHi := a.Iv.Hi.Next(), c.Iv.Lo.Prev()
		if gapLo > gapHi {
			continue
		}
		x0, y0 := float64(a.Iv.Hi), a.V.AsFloat()
		x1, y1 := float64(c.Iv.Lo), c.V.AsFloat()
		isInt := a.V.Kind() == value.KindInt && c.V.Kind() == value.KindInt
		for t := gapLo; t <= gapHi; t++ {
			y := y0 + (y1-y0)*(float64(t)-x0)/(x1-x0)
			if isInt {
				b.SetAt(t, value.Int(int64(math.Round(y))))
			} else {
				b.SetAt(t, value.Float(y))
			}
		}
	}
	// Carry the final value forward to the end of the target.
	last := f.steps[len(f.steps)-1]
	if target.Max() > last.Iv.Hi {
		b.Set(last.Iv.Hi.Next(), target.Max(), last.V)
	}
	return b.Build().Restrict(target), nil
}

// ByName returns the named interpolator. Recognized names: "discrete",
// "step", "linear".
func ByName(name string) (Interpolator, error) {
	switch name {
	case "discrete":
		return Discrete{}, nil
	case "step":
		return StepWise{}, nil
	case "linear":
		return Linear{}, nil
	}
	return nil, fmt.Errorf("tfunc: unknown interpolator %q", name)
}
