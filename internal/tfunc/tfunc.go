package tfunc

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/chronon"
	"repro/internal/lifespan"
	"repro/internal/value"
)

// step is one maximal constant piece of the function: every t in Iv maps
// to V.
type step struct {
	Iv chronon.Interval
	V  value.Value
}

// Func is a partial function from T into a value domain, in canonical
// interval-coalesced form: steps are sorted, non-empty, non-overlapping,
// and adjacent steps with equal values are merged. The zero Func is the
// nowhere-defined function. Funcs are immutable.
type Func struct {
	steps []step
}

// Builder accumulates (time, value) assignments and produces a canonical
// Func. Later assignments to the same chronon overwrite earlier ones,
// which gives update semantics for history construction.
type Builder struct {
	steps []step
}

// Set assigns f(t) = v for every t in [lo,hi].
func (b *Builder) Set(lo, hi chronon.Time, v value.Value) *Builder {
	if !v.IsValid() {
		panic("tfunc: Set with invalid value")
	}
	iv := chronon.NewInterval(lo, hi)
	if iv.IsEmpty() {
		return b
	}
	b.steps = append(b.steps, step{Iv: iv, V: v})
	return b
}

// SetAt assigns f(t) = v at the single chronon t.
func (b *Builder) SetAt(t chronon.Time, v value.Value) *Builder {
	return b.Set(t, t, v)
}

// Build canonicalizes the accumulated assignments. Later Set calls win
// where ranges overlap.
func (b *Builder) Build() Func {
	if len(b.steps) == 0 {
		return Func{}
	}
	// Apply assignments in order: each later step erases the overlapping
	// part of earlier ones. We process by layering: start from the first
	// and punch holes for subsequent ones.
	var acc []step
	for _, s := range b.steps {
		var next []step
		for _, old := range acc {
			if !old.Iv.Overlaps(s.Iv) {
				next = append(next, old)
				continue
			}
			// Keep the non-overlapped fragments of old.
			if old.Iv.Lo < s.Iv.Lo {
				next = append(next, step{Iv: chronon.NewInterval(old.Iv.Lo, s.Iv.Lo.Prev()), V: old.V})
			}
			if old.Iv.Hi > s.Iv.Hi {
				next = append(next, step{Iv: chronon.NewInterval(s.Iv.Hi.Next(), old.Iv.Hi), V: old.V})
			}
		}
		next = append(next, s)
		acc = next
	}
	return canonical(acc)
}

// canonical sorts, validates disjointness and merges equal-valued
// adjacent steps.
func canonical(ss []step) Func {
	if len(ss) == 0 {
		return Func{}
	}
	sort.Slice(ss, func(i, j int) bool { return ss[i].Iv.Lo < ss[j].Iv.Lo })
	out := make([]step, 0, len(ss))
	out = append(out, ss[0])
	for _, s := range ss[1:] {
		last := &out[len(out)-1]
		if s.Iv.Lo <= last.Iv.Hi {
			panic(fmt.Sprintf("tfunc: overlapping steps %v and %v", last.Iv, s.Iv))
		}
		if last.Iv.Adjacent(s.Iv) && last.V.Equal(s.V) && last.V.Kind() == s.V.Kind() {
			last.Iv.Hi = s.Iv.Hi
			continue
		}
		out = append(out, s)
	}
	return Func{steps: out}
}

// Constant returns the function mapping every chronon of ls to v — a
// member of the paper's CD (constant-valued functions), as required for
// key attributes.
func Constant(ls lifespan.Lifespan, v value.Value) Func {
	if !v.IsValid() {
		panic("tfunc: Constant with invalid value")
	}
	ivs := ls.Intervals()
	ss := make([]step, len(ivs))
	for i, iv := range ivs {
		ss[i] = step{Iv: iv, V: v}
	}
	return Func{steps: ss}
}

// At evaluates the function at t. The second result reports whether the
// function is defined there; per the paper, "undefined means that the
// attribute is not relevant at such times, and thus does not exist".
func (f Func) At(t chronon.Time) (value.Value, bool) {
	i := sort.Search(len(f.steps), func(i int) bool { return f.steps[i].Iv.Hi >= t })
	if i < len(f.steps) && f.steps[i].Iv.Contains(t) {
		return f.steps[i].V, true
	}
	return value.Value{}, false
}

// Domain returns the definition lifespan of the partial function — the
// set of chronons where it is defined.
func (f Func) Domain() lifespan.Lifespan {
	ivs := make([]chronon.Interval, len(f.steps))
	for i, s := range f.steps {
		ivs[i] = s.Iv
	}
	return lifespan.New(ivs...)
}

// IsNowhereDefined reports whether the function has empty domain.
func (f Func) IsNowhereDefined() bool { return len(f.steps) == 0 }

// NumSteps returns the number of maximal constant pieces — the
// representation-level size of the function, and the quantity the
// storage experiments (E10) count.
func (f Func) NumSteps() int { return len(f.steps) }

// Restrict returns f|L, the restriction of f to the lifespan L (paper
// Section 3: "we will denote this restricted function by f|D'"). The
// result is defined on Domain(f) ∩ L.
func (f Func) Restrict(l lifespan.Lifespan) Func {
	if f.IsNowhereDefined() || l.IsEmpty() {
		return Func{}
	}
	var out []step
	ivs := l.Intervals()
	j := 0
	for _, s := range f.steps {
		for j < len(ivs) && ivs[j].Hi < s.Iv.Lo {
			j++
		}
		for k := j; k < len(ivs) && ivs[k].Lo <= s.Iv.Hi; k++ {
			iv := s.Iv.Intersect(ivs[k])
			if !iv.IsEmpty() {
				out = append(out, step{Iv: iv, V: s.V})
			}
		}
	}
	return canonical(out)
}

// Merge returns the union t1.v(A) ∪ t2.v(A) of two compatible partial
// functions, as used by the tuple merge operation (t1 + t2). The two
// functions must agree wherever both are defined; Merge reports an error
// otherwise (the paper's mergability condition 3).
func (f Func) Merge(g Func) (Func, error) {
	if f.IsNowhereDefined() {
		return g, nil
	}
	if g.IsNowhereDefined() {
		return f, nil
	}
	shared := f.Domain().Intersect(g.Domain())
	if !shared.IsEmpty() {
		// Verify pointwise agreement on the shared domain, stepwise.
		fr := f.Restrict(shared)
		gr := g.Restrict(shared)
		if !fr.Equal(gr) {
			return Func{}, fmt.Errorf("tfunc: functions contradict on %v", shared)
		}
	}
	// Build: g over f on g's domain, then f elsewhere. Since they agree on
	// the overlap, layering is safe.
	var b Builder
	for _, s := range f.steps {
		b.steps = append(b.steps, s)
	}
	for _, s := range g.steps {
		b.steps = append(b.steps, s)
	}
	return b.Build(), nil
}

// Equal reports extensional equality: same domain and same value at every
// chronon. Canonical form makes this a structural comparison.
func (f Func) Equal(g Func) bool {
	if len(f.steps) != len(g.steps) {
		return false
	}
	for i := range f.steps {
		if !f.steps[i].Iv.Equal(g.steps[i].Iv) {
			return false
		}
		a, b := f.steps[i].V, g.steps[i].V
		if a.Kind() != b.Kind() || !a.Equal(b) {
			return false
		}
	}
	return true
}

// IsConstant reports whether f belongs to CD — "functions having a
// constant image", i.e. the same value at every chronon of the domain.
// The nowhere-defined function is vacuously constant.
func (f Func) IsConstant() bool {
	for i := 1; i < len(f.steps); i++ {
		if !f.steps[i].V.Equal(f.steps[0].V) {
			return false
		}
	}
	return true
}

// ConstantValue returns the single value of a constant function. The
// second result is false for the nowhere-defined function. Panics if f is
// not constant.
func (f Func) ConstantValue() (value.Value, bool) {
	if !f.IsConstant() {
		panic("tfunc: ConstantValue on non-constant function")
	}
	if len(f.steps) == 0 {
		return value.Value{}, false
	}
	return f.steps[0].V, true
}

// Image returns the set of distinct values the function takes, in first-
// occurrence order. For a TT function this is "the set of times that
// t(A) maps to", which defines the dynamic TIME-SLICE.
func (f Func) Image() []value.Value {
	var out []value.Value
	for _, s := range f.steps {
		dup := false
		for _, v := range out {
			if v.Equal(s.V) && v.Kind() == s.V.Kind() {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, s.V)
		}
	}
	return out
}

// TimeImage returns the image of a time-valued (TT) function as a
// lifespan — the parameter set of dynamic TIME-SLICE and TIME-JOIN. It
// errors if any value in the image is not a time.
func (f Func) TimeImage() (lifespan.Lifespan, error) {
	var ivs []chronon.Interval
	for _, s := range f.steps {
		if s.V.Kind() != value.KindTime {
			return lifespan.Lifespan{}, fmt.Errorf("tfunc: TimeImage on %s-valued function", s.V.Kind())
		}
		ivs = append(ivs, chronon.Point(s.V.AsTime()))
	}
	return lifespan.New(ivs...), nil
}

// Steps calls fn for each maximal constant piece in ascending order.
func (f Func) Steps(fn func(iv chronon.Interval, v value.Value) bool) {
	for _, s := range f.steps {
		if !fn(s.Iv, s.V) {
			return
		}
	}
}

// String renders the representation-level form, e.g.
// "{[1,5]→30000, [6,9]→34000}". Constant functions render as the paper's
// <lifespan,value> pair suggestion, e.g. "<{[1,9]},Codd>".
func (f Func) String() string {
	if f.IsNowhereDefined() {
		return "{}"
	}
	if f.IsConstant() && len(f.steps) > 0 {
		v, _ := f.ConstantValue()
		return fmt.Sprintf("<%s,%s>", f.Domain(), v)
	}
	parts := make([]string, len(f.steps))
	for i, s := range f.steps {
		parts[i] = fmt.Sprintf("%s→%s", s.Iv, s.V)
	}
	return "{" + strings.Join(parts, ", ") + "}"
}
