package tfunc

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/chronon"
	"repro/internal/lifespan"
	"repro/internal/value"
)

func mk(pairs ...any) Func {
	// mk(lo, hi, value, lo, hi, value, ...)
	var b Builder
	for i := 0; i < len(pairs); i += 3 {
		b.Set(chronon.Time(pairs[i].(int)), chronon.Time(pairs[i+1].(int)), pairs[i+2].(value.Value))
	}
	return b.Build()
}

func TestBuilderCanonicalizes(t *testing.T) {
	f := mk(1, 5, value.Int(10), 6, 9, value.Int(10))
	if f.NumSteps() != 1 {
		t.Errorf("adjacent equal steps must coalesce: %v", f)
	}
	g := mk(1, 5, value.Int(10), 6, 9, value.Int(20))
	if g.NumSteps() != 2 {
		t.Errorf("distinct values must stay separate: %v", g)
	}
	// Later Set overwrites earlier on overlap.
	h := mk(1, 9, value.Int(10), 4, 6, value.Int(20))
	if v, ok := h.At(5); !ok || v.AsInt() != 20 {
		t.Errorf("overwrite failed: %v", h)
	}
	if v, ok := h.At(2); !ok || v.AsInt() != 10 {
		t.Errorf("unoverwritten region damaged: %v", h)
	}
	if v, ok := h.At(8); !ok || v.AsInt() != 10 {
		t.Errorf("tail region damaged: %v", h)
	}
	if h.NumSteps() != 3 {
		t.Errorf("expected 3 steps, got %d", h.NumSteps())
	}
}

func TestAtAndDomain(t *testing.T) {
	f := mk(1, 3, value.String_("a"), 7, 9, value.String_("b"))
	if _, ok := f.At(5); ok {
		t.Error("undefined in the gap")
	}
	if _, ok := f.At(0); ok {
		t.Error("undefined before start")
	}
	if v, ok := f.At(7); !ok || v.AsString() != "b" {
		t.Error("defined value wrong")
	}
	want := lifespan.MustParse("{[1,3],[7,9]}")
	if !f.Domain().Equal(want) {
		t.Errorf("Domain = %v, want %v", f.Domain(), want)
	}
	if !(Func{}).IsNowhereDefined() {
		t.Error("zero Func is nowhere defined")
	}
}

func TestConstant(t *testing.T) {
	ls := lifespan.MustParse("{[1,5],[9,12]}")
	f := Constant(ls, value.String_("Codd"))
	if !f.IsConstant() {
		t.Error("Constant must be constant")
	}
	if !f.Domain().Equal(ls) {
		t.Errorf("Constant domain = %v", f.Domain())
	}
	v, ok := f.ConstantValue()
	if !ok || v.AsString() != "Codd" {
		t.Error("ConstantValue wrong")
	}
	// Paper: constant values at the representation level are
	// <lifespan,value> pairs.
	if got := f.String(); got != `<{[1,5],[9,12]},"Codd">` {
		t.Errorf("String = %s", got)
	}
	g := mk(1, 2, value.Int(1), 5, 6, value.Int(2))
	if g.IsConstant() {
		t.Error("two-valued function is not constant")
	}
	if _, ok := (Func{}).ConstantValue(); ok {
		t.Error("nowhere-defined has no constant value")
	}
}

func TestRestrict(t *testing.T) {
	f := mk(1, 10, value.Int(1), 11, 20, value.Int(2))
	r := f.Restrict(lifespan.MustParse("{[5,15]}"))
	if !r.Domain().Equal(lifespan.MustParse("{[5,15]}")) {
		t.Errorf("restricted domain = %v", r.Domain())
	}
	if v, _ := r.At(5); v.AsInt() != 1 {
		t.Error("value preserved at 5")
	}
	if v, _ := r.At(15); v.AsInt() != 2 {
		t.Error("value preserved at 15")
	}
	if _, ok := r.At(16); ok {
		t.Error("restriction must cut the tail")
	}
	if !f.Restrict(lifespan.Empty()).IsNowhereDefined() {
		t.Error("restrict to ∅ is nowhere defined")
	}
	if !f.Restrict(lifespan.All()).Equal(f) {
		t.Error("restrict to T is identity")
	}
	// Restriction to disconnected lifespan.
	r2 := f.Restrict(lifespan.MustParse("{[1,2],[19,20]}"))
	if r2.NumSteps() != 2 || !r2.Domain().Equal(lifespan.MustParse("{[1,2],[19,20]}")) {
		t.Errorf("disconnected restriction = %v", r2)
	}
}

func TestMerge(t *testing.T) {
	f := mk(1, 5, value.Int(30000))
	g := mk(9, 12, value.Int(34000))
	m, err := f.Merge(g)
	if err != nil {
		t.Fatal(err)
	}
	if !m.Domain().Equal(lifespan.MustParse("{[1,5],[9,12]}")) {
		t.Errorf("merged domain = %v", m.Domain())
	}
	// Agreement on overlap is fine.
	h := mk(3, 8, value.Int(30000))
	if _, err := f.Merge(h); err != nil {
		t.Errorf("agreeing overlap must merge: %v", err)
	}
	// Contradiction is an error (paper mergability condition 3).
	bad := mk(3, 8, value.Int(99))
	if _, err := f.Merge(bad); err == nil {
		t.Error("contradicting merge must fail")
	}
	// Identity cases.
	if m2, err := f.Merge(Func{}); err != nil || !m2.Equal(f) {
		t.Error("merge with nowhere-defined is identity")
	}
	if m3, err := (Func{}).Merge(f); err != nil || !m3.Equal(f) {
		t.Error("merge with nowhere-defined is identity (left)")
	}
}

func TestImage(t *testing.T) {
	f := mk(1, 2, value.Int(5), 3, 4, value.Int(7), 5, 6, value.Int(5))
	img := f.Image()
	if len(img) != 2 || img[0].AsInt() != 5 || img[1].AsInt() != 7 {
		t.Errorf("Image = %v", img)
	}
}

func TestTimeImage(t *testing.T) {
	// A TT function: e.g. attribute "REVIEW-DATE" mapping each chronon to
	// some other chronon.
	f := mk(1, 3, value.TimeVal(10), 4, 6, value.TimeVal(11), 7, 8, value.TimeVal(20))
	img, err := f.TimeImage()
	if err != nil {
		t.Fatal(err)
	}
	if !img.Equal(lifespan.MustParse("{[10,11],20}")) {
		t.Errorf("TimeImage = %v", img)
	}
	g := mk(1, 2, value.Int(5))
	if _, err := g.TimeImage(); err == nil {
		t.Error("TimeImage of non-TT function must error")
	}
}

func TestEqual(t *testing.T) {
	a := mk(1, 5, value.Int(1))
	b := mk(1, 5, value.Int(1))
	c := mk(1, 5, value.Int(2))
	d := mk(1, 4, value.Int(1))
	if !a.Equal(b) || a.Equal(c) || a.Equal(d) {
		t.Error("Equal misbehaves")
	}
	// Kind-sensitive: Int(1) over [1,5] differs from Float(1) over [1,5]
	// extensionally under kind-aware equality.
	e := mk(1, 5, value.Float(1))
	if a.Equal(e) {
		t.Error("Equal must distinguish kinds")
	}
}

func TestStepsIteration(t *testing.T) {
	f := mk(1, 2, value.Int(1), 4, 5, value.Int(2), 7, 8, value.Int(3))
	var n int
	f.Steps(func(iv chronon.Interval, v value.Value) bool {
		n++
		return n < 2
	})
	if n != 2 {
		t.Errorf("early stop saw %d steps", n)
	}
}

func TestDiscreteInterp(t *testing.T) {
	f := mk(1, 5, value.Int(1))
	if _, err := (Discrete{}).Interpolate(f, lifespan.MustParse("{[1,3]}")); err != nil {
		t.Errorf("subset target must succeed: %v", err)
	}
	if _, err := (Discrete{}).Interpolate(f, lifespan.MustParse("{[1,9]}")); err == nil {
		t.Error("target beyond domain must fail for discrete")
	}
	g, err := (Discrete{}).Interpolate(f, lifespan.MustParse("{[2,4]}"))
	if err != nil || !g.Domain().Equal(lifespan.MustParse("{[2,4]}")) {
		t.Errorf("discrete restriction wrong: %v, %v", g, err)
	}
}

func TestStepWiseInterp(t *testing.T) {
	// Salary history: stored at change points only.
	f := mk(1, 1, value.Int(30000), 5, 5, value.Int(34000))
	total, err := (StepWise{}).Interpolate(f, lifespan.MustParse("{[1,9]}"))
	if err != nil {
		t.Fatal(err)
	}
	for tm, want := range map[chronon.Time]int64{1: 30000, 3: 30000, 4: 30000, 5: 34000, 9: 34000} {
		if v, ok := total.At(tm); !ok || v.AsInt() != want {
			t.Errorf("At(%v) = %v, want %d", tm, v, want)
		}
	}
	if _, err := (StepWise{}).Interpolate(f, lifespan.MustParse("{[0,9]}")); err == nil {
		t.Error("target before first stored value must fail")
	}
	if _, err := (StepWise{}).Interpolate(Func{}, lifespan.MustParse("{[1,2]}")); err == nil {
		t.Error("nowhere-defined input must fail")
	}
	if g, err := (StepWise{}).Interpolate(f, lifespan.Empty()); err != nil || !g.IsNowhereDefined() {
		t.Error("empty target yields nowhere-defined")
	}
}

func TestLinearInterp(t *testing.T) {
	// Stock price sampled at 0 and 10.
	f := mk(0, 0, value.Int(100), 10, 10, value.Int(200))
	total, err := (Linear{}).Interpolate(f, lifespan.MustParse("{[0,12]}"))
	if err != nil {
		t.Fatal(err)
	}
	for tm, want := range map[chronon.Time]int64{0: 100, 5: 150, 10: 200, 12: 200} {
		if v, ok := total.At(tm); !ok || v.AsInt() != want {
			t.Errorf("At(%v) = %v, want %d", tm, v, want)
		}
	}
	// Float version.
	g := mk(0, 0, value.Float(1.0), 4, 4, value.Float(2.0))
	tg, err := (Linear{}).Interpolate(g, lifespan.MustParse("{[0,4]}"))
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := tg.At(2); v.AsFloat() != 1.5 {
		t.Errorf("linear float midpoint = %v", v)
	}
	// Non-numeric is an error.
	s := mk(0, 0, value.String_("a"), 4, 4, value.String_("b"))
	if _, err := (Linear{}).Interpolate(s, lifespan.MustParse("{[0,4]}")); err == nil {
		t.Error("linear over strings must fail")
	}
}

func TestByName(t *testing.T) {
	for _, n := range []string{"discrete", "step", "linear"} {
		ip, err := ByName(n)
		if err != nil || ip.Name() != n {
			t.Errorf("ByName(%q) = %v, %v", n, ip, err)
		}
	}
	if _, err := ByName("spline"); err == nil {
		t.Error("unknown interpolator must fail")
	}
}

func genFunc(seed int64) Func {
	rng := rand.New(rand.NewSource(seed))
	var b Builder
	n := rng.Intn(6)
	for i := 0; i < n; i++ {
		lo := chronon.Time(rng.Intn(50))
		hi := lo + chronon.Time(rng.Intn(8))
		b.Set(lo, hi, value.Int(int64(rng.Intn(4))))
	}
	return b.Build()
}

func genLS(seed int64) lifespan.Lifespan {
	rng := rand.New(rand.NewSource(seed ^ 0x5eed))
	var ivs []chronon.Interval
	for i := 0; i < rng.Intn(4); i++ {
		lo := chronon.Time(rng.Intn(50))
		ivs = append(ivs, chronon.NewInterval(lo, lo+chronon.Time(rng.Intn(10))))
	}
	return lifespan.New(ivs...)
}

func TestFuncProperties(t *testing.T) {
	cfg := &quick.Config{MaxCount: 300}
	props := []struct {
		name string
		fn   any
	}{
		{"restrict domain is intersection", func(a, b int64) bool {
			f, l := genFunc(a), genLS(b)
			return f.Restrict(l).Domain().Equal(f.Domain().Intersect(l))
		}},
		{"restrict preserves values", func(a, b int64, pt uint8) bool {
			f, l := genFunc(a), genLS(b)
			p := chronon.Time(pt % 60)
			rv, rok := f.Restrict(l).At(p)
			fv, fok := f.At(p)
			if !l.Contains(p) {
				return !rok
			}
			return rok == fok && (!rok || rv.Equal(fv))
		}},
		{"restrict is idempotent", func(a, b int64) bool {
			f, l := genFunc(a), genLS(b)
			r := f.Restrict(l)
			return r.Restrict(l).Equal(r)
		}},
		{"merge with self is identity", func(a int64) bool {
			f := genFunc(a)
			m, err := f.Merge(f)
			return err == nil && m.Equal(f)
		}},
		{"merge of disjoint restrictions restores", func(a, b int64) bool {
			f, l := genFunc(a), genLS(b)
			left := f.Restrict(l)
			right := f.Restrict(l.Complement())
			m, err := left.Merge(right)
			return err == nil && m.Equal(f)
		}},
		{"builder output canonical: roundtrip through steps", func(a int64) bool {
			f := genFunc(a)
			var b Builder
			f.Steps(func(iv chronon.Interval, v value.Value) bool {
				b.Set(iv.Lo, iv.Hi, v)
				return true
			})
			return b.Build().Equal(f)
		}},
	}
	for _, p := range props {
		if err := quick.Check(p.fn, cfg); err != nil {
			t.Errorf("%s: %v", p.name, err)
		}
	}
}

func TestBuilderInvalidValuePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Set with invalid value must panic")
		}
	}()
	var b Builder
	b.Set(1, 2, value.Value{})
}
