// Package tuplestamp implements tuple-level timestamping, the dominant
// pre-HRDM representation the paper classifies as "efforts ... along this
// tuple-based line" ([Ben-Zvi 82], [Snodgrass 84]'s TQuel, [Lum 84],
// [Ariav 84]): history is kept in first normal form as immutable tuple
// *versions*, each stamped with a closed validity interval [From,To].
// Any change to any attribute of an object closes the current version and
// opens a new one, so storage grows with the number of changes times the
// full tuple width — the redundancy HRDM's attribute-level functions
// avoid. Baseline for experiments E10 and E11.
package tuplestamp
