package tuplestamp

import (
	"fmt"
	"sort"

	"repro/internal/chronon"
	"repro/internal/lifespan"
	"repro/internal/value"
)

// Scheme mirrors cube.Scheme: flat attributes with the first NumKey
// forming the object key.
type Scheme struct {
	Name   string
	Attrs  []string
	Doms   []value.Domain
	NumKey int
}

// Version is one immutable tuple version, valid over [From,To].
type Version struct {
	From, To chronon.Time
	Vals     []value.Value // scheme attribute order
}

// Relation is a tuple-timestamped relation: versions grouped per object
// key, each group sorted by From and pairwise disjoint.
type Relation struct {
	scheme   *Scheme
	versions map[string][]Version
	keys     []string
}

// NewRelation returns an empty relation.
func NewRelation(s *Scheme) *Relation {
	return &Relation{scheme: s, versions: make(map[string][]Version)}
}

// Scheme returns the relation's scheme.
func (r *Relation) Scheme() *Scheme { return r.scheme }

// NumObjects returns the number of distinct keys.
func (r *Relation) NumObjects() int { return len(r.keys) }

// NumVersions returns the total version count — the storage unit count
// of the representation.
func (r *Relation) NumVersions() int {
	n := 0
	for _, vs := range r.versions {
		n += len(vs)
	}
	return n
}

func keyString(vals []value.Value, numKey int) string {
	parts := make([]string, numKey)
	for i := 0; i < numKey; i++ {
		parts[i] = vals[i].String()
	}
	return value.EncodeKey(parts)
}

// Append records a version. Versions of one object must not overlap;
// appends may arrive in any order.
func (r *Relation) Append(from, to chronon.Time, vals []value.Value) error {
	if len(vals) != len(r.scheme.Attrs) {
		return fmt.Errorf("tuplestamp: arity %d, want %d", len(vals), len(r.scheme.Attrs))
	}
	if from > to {
		return fmt.Errorf("tuplestamp: inverted interval [%v,%v]", from, to)
	}
	k := keyString(vals, r.scheme.NumKey)
	vs := r.versions[k]
	nv := Version{From: from, To: to, Vals: append([]value.Value(nil), vals...)}
	i := sort.Search(len(vs), func(i int) bool { return vs[i].From >= from })
	if i > 0 && vs[i-1].To >= from {
		return fmt.Errorf("tuplestamp: key %s: version [%v,%v] overlaps [%v,%v]",
			k, from, to, vs[i-1].From, vs[i-1].To)
	}
	if i < len(vs) && vs[i].From <= to {
		return fmt.Errorf("tuplestamp: key %s: version [%v,%v] overlaps [%v,%v]",
			k, from, to, vs[i].From, vs[i].To)
	}
	if _, seen := r.versions[k]; !seen {
		r.keys = append(r.keys, k)
	}
	vs = append(vs, Version{})
	copy(vs[i+1:], vs[i:])
	vs[i] = nv
	r.versions[k] = vs
	return nil
}

// KeyHistory returns the object's versions in time order — direct group
// access, like HRDM's per-object tuple but with one version per change.
func (r *Relation) KeyHistory(keyVals ...value.Value) []Version {
	return r.versions[keyString(keyVals, len(keyVals))]
}

// SnapshotAt returns the versions valid at t: a binary search per object.
func (r *Relation) SnapshotAt(t chronon.Time) []Version {
	var out []Version
	for _, k := range r.keys {
		vs := r.versions[k]
		i := sort.Search(len(vs), func(i int) bool { return vs[i].To >= t })
		if i < len(vs) && vs[i].From <= t {
			out = append(out, vs[i])
		}
	}
	return out
}

// When returns the times at which some version satisfies attr θ v. Each
// satisfying version contributes its whole interval, so the scan is per
// version, not per chronon.
func (r *Relation) When(attr string, th value.Theta, v value.Value) (lifespan.Lifespan, error) {
	ai := -1
	for i, a := range r.scheme.Attrs {
		if a == attr {
			ai = i
			break
		}
	}
	if ai < 0 {
		return lifespan.Lifespan{}, fmt.Errorf("tuplestamp: unknown attribute %s", attr)
	}
	var ivs []chronon.Interval
	for _, k := range r.keys {
		for _, ver := range r.versions[k] {
			ok, err := th.Apply(ver.Vals[ai], v)
			if err != nil {
				return lifespan.Lifespan{}, err
			}
			if ok {
				ivs = append(ivs, chronon.NewInterval(ver.From, ver.To))
			}
		}
	}
	return lifespan.New(ivs...), nil
}

// Lifespan returns the union of all version intervals of the object —
// the derived equivalent of HRDM's tuple lifespan.
func (r *Relation) Lifespan(keyVals ...value.Value) lifespan.Lifespan {
	vs := r.versions[keyString(keyVals, len(keyVals))]
	ivs := make([]chronon.Interval, len(vs))
	for i, ver := range vs {
		ivs[i] = chronon.NewInterval(ver.From, ver.To)
	}
	return lifespan.New(ivs...)
}

// SizeBytes estimates the storage footprint with the same accounting as
// cube.SizeBytes and storage.SizeBytes: 8 bytes per scalar, strings at
// length, 16 bytes of timestamps per version.
func (r *Relation) SizeBytes() int64 {
	var total int64
	for _, k := range r.keys {
		for _, ver := range r.versions[k] {
			total += 16 // From, To
			for _, v := range ver.Vals {
				total += valueBytes(v)
			}
		}
	}
	return total
}

func valueBytes(v value.Value) int64 {
	if v.Kind() == value.KindString {
		return int64(len(v.AsString()))
	}
	return 8
}
