package tuplestamp

import (
	"testing"

	"repro/internal/chronon"
	"repro/internal/lifespan"
	"repro/internal/value"
)

func empTS(t *testing.T) *Relation {
	t.Helper()
	s := &Scheme{
		Name:   "EMP",
		Attrs:  []string{"NAME", "SAL", "DEPT"},
		Doms:   []value.Domain{value.Strings, value.Ints, value.Strings},
		NumKey: 1,
	}
	r := NewRelation(s)
	app := func(from, to int64, name string, sal int64, dept string) {
		t.Helper()
		if err := r.Append(chronon.Time(from), chronon.Time(to), []value.Value{value.String_(name), value.Int(sal), value.String_(dept)}); err != nil {
			t.Fatal(err)
		}
	}
	app(0, 4, "John", 30000, "Toys")
	app(5, 9, "John", 34000, "Toys")
	app(0, 3, "Ahmed", 30000, "Toys")
	app(8, 14, "Ahmed", 31000, "Books")
	return r
}

func TestAppendValidation(t *testing.T) {
	r := empTS(t)
	if err := r.Append(1, 2, []value.Value{value.String_("X")}); err == nil {
		t.Error("wrong arity must fail")
	}
	if err := r.Append(5, 2, mkVals("X", 1, "D")); err == nil {
		t.Error("inverted interval must fail")
	}
	// Overlap with existing version of same key.
	if err := r.Append(3, 6, mkVals("John", 1, "D")); err == nil {
		t.Error("overlapping version must fail")
	}
	// Out-of-order append into a gap is fine.
	if err := r.Append(5, 6, mkVals("Ahmed", 99, "D")); err != nil {
		t.Errorf("gap append should succeed: %v", err)
	}
	hist := r.KeyHistory(value.String_(`Ahmed`))
	if len(hist) != 3 || hist[1].From != 5 {
		t.Errorf("versions must stay sorted: %v", hist)
	}
}

func TestKeyHistoryAndLifespan(t *testing.T) {
	r := empTS(t)
	hist := r.KeyHistory(value.String_("John"))
	if len(hist) != 2 {
		t.Fatalf("John versions = %d, want 2", len(hist))
	}
	if hist[0].Vals[1].AsInt() != 30000 || hist[1].Vals[1].AsInt() != 34000 {
		t.Error("version values wrong")
	}
	ls := r.Lifespan(value.String_("Ahmed"))
	if !ls.Equal(lifespan.MustParse("{[0,3],[8,14]}")) {
		t.Errorf("Ahmed lifespan = %v", ls)
	}
	if r.KeyHistory(value.String_("Nobody")) != nil {
		t.Error("unknown key yields nil")
	}
}

func TestSnapshotAt(t *testing.T) {
	r := empTS(t)
	if got := len(r.SnapshotAt(2)); got != 2 {
		t.Errorf("snapshot@2 = %d, want 2", got)
	}
	if got := len(r.SnapshotAt(6)); got != 1 {
		t.Errorf("snapshot@6 = %d, want 1", got)
	}
	if got := len(r.SnapshotAt(99)); got != 0 {
		t.Errorf("snapshot@99 = %d, want 0", got)
	}
}

func TestWhen(t *testing.T) {
	r := empTS(t)
	ls, err := r.When("SAL", value.EQ, value.Int(30000))
	if err != nil {
		t.Fatal(err)
	}
	if !ls.Equal(lifespan.MustParse("{[0,4]}")) {
		t.Errorf("when = %v", ls)
	}
	if _, err := r.When("NOPE", value.EQ, value.Int(0)); err == nil {
		t.Error("unknown attribute must fail")
	}
}

func TestCounts(t *testing.T) {
	r := empTS(t)
	if r.NumObjects() != 2 || r.NumVersions() != 4 {
		t.Errorf("objects=%d versions=%d", r.NumObjects(), r.NumVersions())
	}
	if r.SizeBytes() <= 0 {
		t.Error("size must be positive")
	}
	// Version count grows with changes, not with history length: a long
	// quiet version costs the same as a short one.
	long := NewRelation(r.Scheme())
	_ = long.Append(0, 1000000, mkVals("Quiet", 1, "D"))
	short := NewRelation(r.Scheme())
	_ = short.Append(0, 1, mkVals("Quiet", 1, "D"))
	if long.SizeBytes() != short.SizeBytes() {
		t.Error("interval length must not affect version size")
	}
}

func mkVals(name string, sal int64, dept string) []value.Value {
	return []value.Value{value.String_(name), value.Int(sal), value.String_(dept)}
}
