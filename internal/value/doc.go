// Package value implements the value domains D = {D1, ..., Dn} of HRDM.
//
// Each value domain Di is "a set of atomic (non-decomposable) values"
// (paper Section 3). This package provides a dynamically-typed atomic
// Value covering the kinds the paper's examples need (integers, floats,
// strings, booleans, and time points — the latter backing the TT domain
// of time-valued attributes), the θ comparison relations used by
// SELECT and θ-JOIN, and domain descriptors for DOM assignments.
package value
