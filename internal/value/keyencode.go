package value

import "strings"

// EncodeKey combines the canonical renderings of a multi-attribute key
// into one index string. Each part is escaped ('\' → `\\`, '|' → `\|`)
// before the parts are joined with '|', so the encoding is injective: a
// part containing the separator can never alias a different split,
// e.g. ("a|b","c") vs ("a","b|c"). Every representation that indexes
// composite keys by string — core relations, and the cube and
// tuplestamp storage baselines — must encode through this function so
// their canonical key strings agree and stay collision-free.
func EncodeKey(parts []string) string {
	n := 0
	for _, p := range parts {
		n += len(p) + 1
	}
	var b strings.Builder
	b.Grow(n)
	for i, p := range parts {
		if i > 0 {
			b.WriteByte('|')
		}
		if !strings.ContainsAny(p, `\|`) {
			b.WriteString(p)
			continue
		}
		for j := 0; j < len(p); j++ {
			if p[j] == '\\' || p[j] == '|' {
				b.WriteByte('\\')
			}
			b.WriteByte(p[j])
		}
	}
	return b.String()
}
