package value

import (
	"fmt"
	"strconv"

	"repro/internal/chronon"
)

// Kind enumerates the atomic value kinds.
type Kind uint8

const (
	KindInvalid Kind = iota
	KindInt
	KindFloat
	KindString
	KindBool
	// KindTime marks values drawn from T itself. Attributes whose
	// value-domain is KindTime are the "time-valued" attributes with
	// DOM(A) ⊆ TT that power dynamic TIME-SLICE and TIME-JOIN.
	KindTime
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindInt:
		return "int"
	case KindFloat:
		return "float"
	case KindString:
		return "string"
	case KindBool:
		return "bool"
	case KindTime:
		return "time"
	default:
		return "invalid"
	}
}

// Value is a single atomic value from one of the value domains. The zero
// Value is invalid and distinct from every valid value; operator results
// never contain invalid values (where the paper says an attribute "does
// not exist" at a time, the temporal function is simply undefined there).
type Value struct {
	kind Kind
	n    int64   // int, bool (0/1), time
	f    float64 // float
	s    string  // string
}

// Int returns an integer value.
func Int(v int64) Value { return Value{kind: KindInt, n: v} }

// Float returns a floating-point value.
func Float(v float64) Value { return Value{kind: KindFloat, f: v} }

// String_ returns a string value. (Named with a trailing underscore to
// avoid colliding with the String method.)
func String_(v string) Value { return Value{kind: KindString, s: v} }

// Bool returns a boolean value.
func Bool(v bool) Value {
	var n int64
	if v {
		n = 1
	}
	return Value{kind: KindBool, n: n}
}

// TimeVal returns a value of kind time, i.e. a member of T viewed as a
// value domain (the range of TT functions).
func TimeVal(t chronon.Time) Value { return Value{kind: KindTime, n: int64(t)} }

// Kind reports the value's kind.
func (v Value) Kind() Kind { return v.kind }

// IsValid reports whether the value carries a kind.
func (v Value) IsValid() bool { return v.kind != KindInvalid }

// AsInt returns the integer payload. It panics if the kind is not int.
func (v Value) AsInt() int64 {
	v.mustBe(KindInt)
	return v.n
}

// AsFloat returns the float payload; integer values widen losslessly.
func (v Value) AsFloat() float64 {
	switch v.kind {
	case KindFloat:
		return v.f
	case KindInt:
		return float64(v.n)
	}
	panic(fmt.Sprintf("value: AsFloat on %s value", v.kind))
}

// AsString returns the string payload. It panics if the kind is not string.
func (v Value) AsString() string {
	v.mustBe(KindString)
	return v.s
}

// AsBool returns the boolean payload. It panics if the kind is not bool.
func (v Value) AsBool() bool {
	v.mustBe(KindBool)
	return v.n != 0
}

// AsTime returns the time payload. It panics if the kind is not time.
func (v Value) AsTime() chronon.Time {
	v.mustBe(KindTime)
	return chronon.Time(v.n)
}

func (v Value) mustBe(k Kind) {
	if v.kind != k {
		panic(fmt.Sprintf("value: As%v on %v value", k, v.kind))
	}
}

// Equal reports value equality. Values of different kinds are unequal,
// except that ints and floats compare numerically (30 == 30.0), matching
// what a user writing a selection predicate expects.
func (v Value) Equal(w Value) bool {
	if v.kind == w.kind {
		switch v.kind {
		case KindFloat:
			return v.f == w.f
		case KindString:
			return v.s == w.s
		default:
			return v.n == w.n
		}
	}
	if numericPair(v, w) {
		return v.AsFloat() == w.AsFloat()
	}
	return false
}

func numericPair(v, w Value) bool {
	num := func(k Kind) bool { return k == KindInt || k == KindFloat }
	return num(v.kind) && num(w.kind)
}

// Compare orders two values: -1, 0, +1. Only values of comparable kinds
// may be ordered (numeric with numeric, string with string, time with
// time, bool with bool — false < true); otherwise Compare returns an
// error. Comparability errors surface to the algebra as query errors.
func (v Value) Compare(w Value) (int, error) {
	switch {
	case numericPair(v, w):
		a, b := v.AsFloat(), w.AsFloat()
		return cmp(a, b), nil
	case v.kind == KindString && w.kind == KindString:
		switch {
		case v.s < w.s:
			return -1, nil
		case v.s > w.s:
			return 1, nil
		}
		return 0, nil
	case v.kind == KindTime && w.kind == KindTime,
		v.kind == KindBool && w.kind == KindBool:
		return cmp(v.n, w.n), nil
	}
	return 0, fmt.Errorf("value: cannot compare %s with %s", v.kind, w.kind)
}

func cmp[T int64 | float64](a, b T) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

// String renders the value for display: strings are quoted, booleans are
// true/false, times use chronon notation.
func (v Value) String() string {
	switch v.kind {
	case KindInt:
		return strconv.FormatInt(v.n, 10)
	case KindFloat:
		return strconv.FormatFloat(v.f, 'g', -1, 64)
	case KindString:
		return strconv.Quote(v.s)
	case KindBool:
		if v.n != 0 {
			return "true"
		}
		return "false"
	case KindTime:
		return "@" + chronon.Time(v.n).String()
	default:
		return "<invalid>"
	}
}

// Theta is one of the six comparison relations θ of the paper's selection
// predicates "A θ a" and θ-JOIN conditions "A θ B".
type Theta uint8

const (
	EQ Theta = iota // =
	NE              // ≠
	LT              // <
	LE              // ≤
	GT              // >
	GE              // ≥
)

// String renders the comparator.
func (th Theta) String() string {
	switch th {
	case EQ:
		return "="
	case NE:
		return "!="
	case LT:
		return "<"
	case LE:
		return "<="
	case GT:
		return ">"
	case GE:
		return ">="
	default:
		return "?"
	}
}

// ParseTheta parses a comparator token.
func ParseTheta(s string) (Theta, error) {
	switch s {
	case "=", "==":
		return EQ, nil
	case "!=", "<>", "≠":
		return NE, nil
	case "<":
		return LT, nil
	case "<=", "≤":
		return LE, nil
	case ">":
		return GT, nil
	case ">=", "≥":
		return GE, nil
	}
	return 0, fmt.Errorf("value: unknown comparator %q", s)
}

// Apply evaluates v θ w. Equality and inequality are defined for all kind
// pairs (cross-kind non-numeric values are simply unequal); the order
// comparators require comparable kinds.
func (th Theta) Apply(v, w Value) (bool, error) {
	switch th {
	case EQ:
		return v.Equal(w), nil
	case NE:
		return !v.Equal(w), nil
	}
	c, err := v.Compare(w)
	if err != nil {
		return false, err
	}
	switch th {
	case LT:
		return c < 0, nil
	case LE:
		return c <= 0, nil
	case GT:
		return c > 0, nil
	case GE:
		return c >= 0, nil
	}
	return false, fmt.Errorf("value: invalid comparator %d", th)
}

// Domain describes a value domain Di: a kind plus a human-readable name.
// DOM assignments in relation schemes reference Domains.
type Domain struct {
	Name string
	Kind Kind
}

// Common domains used by the examples and tests.
var (
	Ints    = Domain{Name: "integers", Kind: KindInt}
	Floats  = Domain{Name: "reals", Kind: KindFloat}
	Strings = Domain{Name: "strings", Kind: KindString}
	Bools   = Domain{Name: "booleans", Kind: KindBool}
	Times   = Domain{Name: "times", Kind: KindTime}
)

// Contains reports whether v is a member of the domain.
func (d Domain) Contains(v Value) bool { return v.kind == d.Kind }
