package value

import (
	"testing"
	"testing/quick"

	"repro/internal/chronon"
)

func TestConstructorsAndAccessors(t *testing.T) {
	if Int(42).AsInt() != 42 {
		t.Error("Int round trip")
	}
	if Float(2.5).AsFloat() != 2.5 {
		t.Error("Float round trip")
	}
	if String_("codd").AsString() != "codd" {
		t.Error("String round trip")
	}
	if !Bool(true).AsBool() || Bool(false).AsBool() {
		t.Error("Bool round trip")
	}
	if TimeVal(7).AsTime() != chronon.Time(7) {
		t.Error("Time round trip")
	}
	if (Value{}).IsValid() {
		t.Error("zero Value must be invalid")
	}
	if !Int(0).IsValid() {
		t.Error("Int(0) is a valid value")
	}
}

func TestAccessorPanics(t *testing.T) {
	cases := []func(){
		func() { Int(1).AsString() },
		func() { String_("x").AsInt() },
		func() { Bool(true).AsFloat() },
		func() { Int(1).AsTime() },
		func() { String_("x").AsBool() },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			f()
		}()
	}
}

func TestEqual(t *testing.T) {
	cases := []struct {
		a, b Value
		want bool
	}{
		{Int(3), Int(3), true},
		{Int(3), Int(4), false},
		{Int(30), Float(30.0), true}, // numeric cross-kind equality
		{Float(1.5), Int(1), false},
		{String_("a"), String_("a"), true},
		{String_("a"), String_("b"), false},
		{String_("3"), Int(3), false}, // no string/number coercion
		{Bool(true), Bool(true), true},
		{Bool(true), Int(1), false},
		{TimeVal(5), TimeVal(5), true},
		{TimeVal(5), Int(5), false}, // times are not integers in the model
	}
	for _, c := range cases {
		if got := c.a.Equal(c.b); got != c.want {
			t.Errorf("%v = %v: got %v, want %v", c.a, c.b, got, c.want)
		}
		if got := c.b.Equal(c.a); got != c.want {
			t.Errorf("equality must be symmetric: %v, %v", c.a, c.b)
		}
	}
}

func TestCompare(t *testing.T) {
	lt := []struct{ a, b Value }{
		{Int(1), Int(2)},
		{Int(1), Float(1.5)},
		{Float(-0.5), Int(0)},
		{String_("abc"), String_("abd")},
		{TimeVal(3), TimeVal(9)},
		{Bool(false), Bool(true)},
	}
	for _, c := range lt {
		got, err := c.a.Compare(c.b)
		if err != nil || got != -1 {
			t.Errorf("Compare(%v,%v) = %d, %v; want -1", c.a, c.b, got, err)
		}
		back, err := c.b.Compare(c.a)
		if err != nil || back != 1 {
			t.Errorf("Compare(%v,%v) = %d, %v; want 1", c.b, c.a, back, err)
		}
	}
	if got, err := Int(7).Compare(Int(7)); err != nil || got != 0 {
		t.Errorf("Compare equal = %d, %v", got, err)
	}
	for _, bad := range [][2]Value{
		{Int(1), String_("1")},
		{TimeVal(1), Int(1)},
		{Bool(true), Int(1)},
		{String_("x"), Bool(false)},
	} {
		if _, err := bad[0].Compare(bad[1]); err == nil {
			t.Errorf("Compare(%v,%v) should error", bad[0], bad[1])
		}
	}
}

func TestThetaApply(t *testing.T) {
	cases := []struct {
		th   Theta
		a, b Value
		want bool
	}{
		{EQ, Int(3), Int(3), true},
		{NE, Int(3), Int(3), false},
		{NE, Int(3), String_("x"), true}, // cross-kind NE is just "not equal"
		{LT, Int(3), Int(5), true},
		{LE, Int(5), Int(5), true},
		{GT, Float(5.5), Int(5), true},
		{GE, Int(4), Int(5), false},
		{LT, String_("ann"), String_("bob"), true},
		{GE, TimeVal(9), TimeVal(3), true},
	}
	for _, c := range cases {
		got, err := c.th.Apply(c.a, c.b)
		if err != nil {
			t.Fatalf("%v %v %v: %v", c.a, c.th, c.b, err)
		}
		if got != c.want {
			t.Errorf("%v %v %v = %v, want %v", c.a, c.th, c.b, got, c.want)
		}
	}
	if _, err := LT.Apply(Int(1), String_("x")); err == nil {
		t.Error("ordering incomparable kinds should error")
	}
}

func TestThetaStringParse(t *testing.T) {
	for _, th := range []Theta{EQ, NE, LT, LE, GT, GE} {
		back, err := ParseTheta(th.String())
		if err != nil || back != th {
			t.Errorf("round trip %v: %v, %v", th, back, err)
		}
	}
	for in, want := range map[string]Theta{"==": EQ, "<>": NE, "≠": NE, "≤": LE, "≥": GE} {
		got, err := ParseTheta(in)
		if err != nil || got != want {
			t.Errorf("ParseTheta(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseTheta("~"); err == nil {
		t.Error("ParseTheta should reject unknown tokens")
	}
}

func TestValueString(t *testing.T) {
	cases := map[string]Value{
		"42":        Int(42),
		"2.5":       Float(2.5),
		`"hi"`:      String_("hi"),
		"true":      Bool(true),
		"false":     Bool(false),
		"@7":        TimeVal(7),
		"<invalid>": {},
	}
	for want, v := range cases {
		if got := v.String(); got != want {
			t.Errorf("String(%#v) = %q, want %q", v, got, want)
		}
	}
}

func TestDomains(t *testing.T) {
	if !Ints.Contains(Int(1)) || Ints.Contains(Float(1)) {
		t.Error("Ints membership")
	}
	if !Times.Contains(TimeVal(0)) || Times.Contains(Int(0)) {
		t.Error("Times membership")
	}
	if !Strings.Contains(String_("")) {
		t.Error("empty string is still a string")
	}
}

func TestCompareProperties(t *testing.T) {
	// Antisymmetry and totality of the numeric order.
	err := quick.Check(func(a, b int32) bool {
		x, y := Int(int64(a)), Int(int64(b))
		c1, e1 := x.Compare(y)
		c2, e2 := y.Compare(x)
		if e1 != nil || e2 != nil {
			return false
		}
		return c1 == -c2 && (c1 == 0) == x.Equal(y)
	}, nil)
	if err != nil {
		t.Error(err)
	}
	// EQ/NE are complementary for all kind combinations.
	vals := []Value{Int(1), Float(1), String_("1"), Bool(true), TimeVal(1), Int(2)}
	for _, a := range vals {
		for _, b := range vals {
			eq, _ := EQ.Apply(a, b)
			ne, _ := NE.Apply(a, b)
			if eq == ne {
				t.Errorf("EQ and NE must be complementary for %v, %v", a, b)
			}
		}
	}
}
