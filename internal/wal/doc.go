// Package wal implements the append-only write-ahead log underneath
// the durable store: a single file of length-prefixed, CRC-framed,
// LSN-stamped records, fsynced on every append so that a record handed
// back to the caller survives a process kill at any instant.
//
// The package is deliberately payload-agnostic — a record is an opaque
// byte slice plus a monotonically increasing log sequence number — so
// the framing, fsync discipline and torn-tail recovery stay independent
// of what internal/storage chooses to log (committed write groups; see
// docs/DURABILITY.md for the payload format and the recovery
// invariants). Open scans the file, keeps the longest prefix of intact
// records, and physically truncates anything after the first torn or
// corrupt frame; TruncateThrough rewrites the log atomically (temp file
// + rename) for checkpoints, preserving records newer than the
// checkpoint's snapshot.
package wal
