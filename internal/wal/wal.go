package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/obs"
)

// File layout. The header is written (and fsynced) when the file is
// created, before any record can be acknowledged, so an intact log
// always starts with it. Each record is framed independently:
//
//	header  := u32 magic "HRWL" | u32 version
//	record  := u32 payloadLen | u32 crc32(payload) | u64 lsn | payload
//
// All integers are little-endian. The CRC covers the payload only; the
// length and LSN fields are validated structurally (bounded by the file
// size, strictly increasing) during the scan.
const (
	logMagic   = 0x4852574c // "HRWL"
	logVersion = 1
	headerSize = 8
	recHeader  = 16
)

// Log metrics: bytes and records appended, the fsync latency every
// durable commit pays, and what recovery found — the numbers an
// operator sizes checkpoint policy against.
var (
	mAppendRecords = obs.Default.Counter("wal.append.records")
	mAppendBytes   = obs.Default.Counter("wal.append.bytes")
	mFsyncNs       = obs.Default.Histogram("wal.append.fsync_ns")
	mOpenRecords   = obs.Default.Counter("wal.recover.records")
	mTornBytes     = obs.Default.Counter("wal.recover.torn_bytes")
)

// Options configures a Log.
type Options struct {
	// NoSync skips the per-append fsync. Appends then survive a process
	// crash only if the OS flushed them, so the durability guarantee is
	// gone — the option exists for tests and for the wal_commit bench
	// variant that isolates fsync cost. Production logs use the default.
	NoSync bool
}

// OpenStats reports what Open found in an existing log file.
type OpenStats struct {
	// Records is the number of intact records in the kept prefix.
	Records int
	// Bytes is the valid log size after recovery, header included.
	Bytes int64
	// TornBytes is how much trailing data was discarded: a torn append
	// from a mid-write kill, or anything after the first corrupt frame.
	TornBytes int64
	// LastLSN is the LSN of the last intact record (0 if none).
	LastLSN uint64
}

// Log is an append-only record log over a single file. All methods are
// safe for concurrent use; appends are serialized, so the file order of
// records is the order Append calls returned.
type Log struct {
	mu    sync.Mutex
	f     *os.File // nil after Close
	path  string
	opts  Options
	size  int64  // file offset past the last intact record
	lsn   uint64 // last LSN assigned or observed
	stats OpenStats
}

// Open opens (or creates) the log at path, scans it for the longest
// prefix of intact records, and truncates the file to that prefix so
// later appends continue from a clean tail. A file whose header itself
// is damaged carries no attributable records; it is reset to an empty
// log (the loss is reported in TornBytes). Under the crash model the
// log is built for — fsync before acknowledge — a damaged header can
// only mean corruption beyond a kill, and an empty prefix is the only
// safe reading.
func Open(path string, opts Options) (*Log, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o666)
	if err != nil {
		return nil, fmt.Errorf("wal: open: %w", err)
	}
	l := &Log{f: f, path: path, opts: opts}
	if err := l.recover(); err != nil {
		f.Close()
		return nil, err
	}
	return l, nil
}

// recover validates the header, scans the records, and truncates the
// file past the last intact one.
func (l *Log) recover() error {
	info, err := l.f.Stat()
	if err != nil {
		return fmt.Errorf("wal: stat: %w", err)
	}
	fileSize := info.Size()
	if fileSize < headerSize || !l.headerOK() {
		// Fresh file, or one whose header was destroyed: start empty.
		if fileSize > 0 {
			l.stats.TornBytes = fileSize
			mTornBytes.Add(uint64(fileSize))
		}
		if err := l.writeHeader(); err != nil {
			return err
		}
		l.size = headerSize
		l.stats.Bytes = headerSize
		return nil
	}
	end, n, last, err := scanRecords(l.f, fileSize, nil)
	if err != nil {
		return err
	}
	l.size, l.lsn = end, last
	l.stats = OpenStats{Records: n, Bytes: end, TornBytes: fileSize - end, LastLSN: last}
	mOpenRecords.Add(uint64(n))
	if end < fileSize {
		mTornBytes.Add(uint64(fileSize - end))
		if err := l.f.Truncate(end); err != nil {
			return fmt.Errorf("wal: truncating torn tail: %w", err)
		}
		if err := l.f.Sync(); err != nil {
			return fmt.Errorf("wal: sync after truncate: %w", err)
		}
	}
	return nil
}

// headerOK reads and validates the file header.
func (l *Log) headerOK() bool {
	var hdr [headerSize]byte
	if _, err := l.f.ReadAt(hdr[:], 0); err != nil {
		return false
	}
	return binary.LittleEndian.Uint32(hdr[0:4]) == logMagic &&
		binary.LittleEndian.Uint32(hdr[4:8]) == logVersion
}

// writeHeader resets the file to an empty log: header only, fsynced
// before any append can be acknowledged on top of it.
func (l *Log) writeHeader() error {
	var hdr [headerSize]byte
	binary.LittleEndian.PutUint32(hdr[0:4], logMagic)
	binary.LittleEndian.PutUint32(hdr[4:8], logVersion)
	if err := l.f.Truncate(0); err != nil {
		return fmt.Errorf("wal: reset: %w", err)
	}
	if _, err := l.f.WriteAt(hdr[:], 0); err != nil {
		return fmt.Errorf("wal: write header: %w", err)
	}
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("wal: sync header: %w", err)
	}
	return nil
}

// scanRecords walks the records of r from the header to the first
// frame that is torn (runs past limit) or corrupt (CRC mismatch, or an
// LSN that fails to increase). It returns the offset just past the
// last intact record, the record count, and the last LSN. When fn is
// non-nil it receives each intact record; the payload slice is reused
// between calls. A non-nil error from fn aborts the scan and is
// returned as-is.
func scanRecords(r io.ReaderAt, limit int64, fn func(lsn uint64, payload []byte) error) (end int64, n int, lastLSN uint64, err error) {
	end = headerSize
	var hdr [recHeader]byte
	var payload []byte
	for {
		if end+recHeader > limit {
			return end, n, lastLSN, nil
		}
		if _, err := r.ReadAt(hdr[:], end); err != nil {
			return end, n, lastLSN, nil
		}
		length := int64(binary.LittleEndian.Uint32(hdr[0:4]))
		crc := binary.LittleEndian.Uint32(hdr[4:8])
		lsn := binary.LittleEndian.Uint64(hdr[8:16])
		// Structural validation before any allocation: the length must
		// fit inside the file, so a corrupt length field cannot trigger
		// a giant read, and the LSN must strictly increase.
		if end+recHeader+length > limit || lsn <= lastLSN {
			return end, n, lastLSN, nil
		}
		if int64(cap(payload)) < length {
			payload = make([]byte, length)
		}
		payload = payload[:length]
		if _, err := r.ReadAt(payload, end+recHeader); err != nil {
			return end, n, lastLSN, nil
		}
		if crc32.ChecksumIEEE(payload) != crc {
			return end, n, lastLSN, nil
		}
		if fn != nil {
			if ferr := fn(lsn, payload); ferr != nil {
				return end, n, lastLSN, ferr
			}
		}
		end += recHeader + length
		n++
		lastLSN = lsn
	}
}

// Stats returns what Open found in the file.
func (l *Log) Stats() OpenStats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.stats
}

// Size returns the current valid log size in bytes, header included.
func (l *Log) Size() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.size
}

// LastLSN returns the highest LSN assigned or observed so far.
func (l *Log) LastLSN() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.lsn
}

// EnsureLSN raises the log's LSN clock to at least min, so records
// appended after a checkpoint restore carry LSNs above the snapshot's.
func (l *Log) EnsureLSN(min uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.lsn < min {
		l.lsn = min
	}
}

// Replay streams every intact record to fn in append order. The
// payload slice is only valid during the call. Replay re-validates
// every frame, so it may be called on a log another process wrote.
func (l *Log) Replay(fn func(lsn uint64, payload []byte) error) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return errClosed(l)
	}
	_, _, _, err := scanRecords(l.f, l.size, fn)
	return err
}

// Append frames payload under the next LSN, writes it in one
// contiguous write, and (unless NoSync) fsyncs before returning — the
// write-ahead point: once Append returns, the record survives a kill.
// The returned LSN orders the record against every other append and
// against checkpoint snapshots.
func (l *Log) Append(payload []byte) (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return 0, errClosed(l)
	}
	lsn := l.lsn + 1
	rec := make([]byte, recHeader+len(payload))
	binary.LittleEndian.PutUint32(rec[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(rec[4:8], crc32.ChecksumIEEE(payload))
	binary.LittleEndian.PutUint64(rec[8:16], lsn)
	copy(rec[recHeader:], payload)
	if _, err := l.f.WriteAt(rec, l.size); err != nil {
		// Leave no partial frame behind the valid size; best effort —
		// recovery would discard it as a torn tail anyway.
		l.f.Truncate(l.size)
		return 0, fmt.Errorf("wal: append: %w", err)
	}
	if !l.opts.NoSync {
		t0 := time.Now()
		if err := l.f.Sync(); err != nil {
			return 0, fmt.Errorf("wal: fsync: %w", err)
		}
		mFsyncNs.ObserveSince(t0)
	}
	l.size += int64(len(rec))
	l.lsn = lsn
	mAppendRecords.Inc()
	mAppendBytes.Add(uint64(len(rec)))
	return lsn, nil
}

// TruncateThrough atomically discards every record with an LSN at or
// below lsn — the checkpoint commit point: the caller has made those
// records durable elsewhere (a snapshot file stamped with lsn), so the
// log can shed them. Records above lsn (appended while the snapshot
// was being written) survive. The rewrite goes through a temp file and
// a rename, so a kill at any instant leaves either the old log or the
// new one — never a half-truncated file. The LSN clock is unaffected.
func (l *Log) TruncateThrough(lsn uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return errClosed(l)
	}
	dir := filepath.Dir(l.path)
	tmp, err := os.CreateTemp(dir, ".wal-truncate-*")
	if err != nil {
		return fmt.Errorf("wal: truncate: %w", err)
	}
	defer func() {
		if tmp != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	var hdr [headerSize]byte
	binary.LittleEndian.PutUint32(hdr[0:4], logMagic)
	binary.LittleEndian.PutUint32(hdr[4:8], logVersion)
	if _, err := tmp.Write(hdr[:]); err != nil {
		return fmt.Errorf("wal: truncate: %w", err)
	}
	// Copy the surviving tail. Frames are rebuilt rather than blindly
	// byte-copied so the survivor file is valid by construction.
	_, _, _, err = scanRecords(l.f, l.size, func(recLSN uint64, payload []byte) error {
		if recLSN <= lsn {
			return nil
		}
		rec := make([]byte, recHeader+len(payload))
		binary.LittleEndian.PutUint32(rec[0:4], uint32(len(payload)))
		binary.LittleEndian.PutUint32(rec[4:8], crc32.ChecksumIEEE(payload))
		binary.LittleEndian.PutUint64(rec[8:16], recLSN)
		copy(rec[recHeader:], payload)
		_, werr := tmp.Write(rec)
		return werr
	})
	if err != nil {
		return fmt.Errorf("wal: truncate: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		return fmt.Errorf("wal: truncate sync: %w", err)
	}
	newSize, err := tmp.Seek(0, io.SeekCurrent)
	if err != nil {
		return fmt.Errorf("wal: truncate: %w", err)
	}
	if err := os.Rename(tmp.Name(), l.path); err != nil {
		return fmt.Errorf("wal: truncate rename: %w", err)
	}
	if err := syncDir(dir); err != nil {
		return err
	}
	// The temp handle now refers to the file living at l.path; swap it
	// in and drop the old inode.
	l.f.Close()
	l.f, tmp = tmp, nil
	l.size = newSize
	return nil
}

// Reset discards every record — TruncateThrough past the newest LSN.
func (l *Log) Reset() error {
	return l.TruncateThrough(^uint64(0))
}

// Close fsyncs and closes the file. Further appends fail, which aborts
// (rather than silently un-logs) any write group still racing a store
// shutdown.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return nil
	}
	err := l.f.Sync()
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	l.f = nil
	return err
}

func errClosed(l *Log) error {
	return fmt.Errorf("wal: log %s is closed", l.path)
}

// syncDir fsyncs a directory so a rename inside it is durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("wal: sync dir: %w", err)
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("wal: sync dir: %w", err)
	}
	return nil
}
