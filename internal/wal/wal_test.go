package wal

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func openT(t *testing.T, path string) *Log {
	t.Helper()
	l, err := Open(path, Options{})
	if err != nil {
		t.Fatalf("Open(%s): %v", path, err)
	}
	t.Cleanup(func() { l.Close() })
	return l
}

func appendT(t *testing.T, l *Log, payload string) uint64 {
	t.Helper()
	lsn, err := l.Append([]byte(payload))
	if err != nil {
		t.Fatalf("Append(%q): %v", payload, err)
	}
	return lsn
}

// collect replays the log into (lsn, payload) pairs.
func collect(t *testing.T, l *Log) (lsns []uint64, payloads []string) {
	t.Helper()
	err := l.Replay(func(lsn uint64, payload []byte) error {
		lsns = append(lsns, lsn)
		payloads = append(payloads, string(payload))
		return nil
	})
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	return lsns, payloads
}

func TestFrameRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l := openT(t, path)
	want := []string{"alpha", "", "gamma with a longer payload \x00\xff"}
	for i, p := range want {
		if lsn := appendT(t, l, p); lsn != uint64(i+1) {
			t.Fatalf("append %d: lsn = %d, want %d", i, lsn, i+1)
		}
	}
	lsns, payloads := collect(t, l)
	if len(payloads) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(payloads), len(want))
	}
	for i := range want {
		if payloads[i] != want[i] || lsns[i] != uint64(i+1) {
			t.Errorf("record %d: (%d, %q), want (%d, %q)", i, lsns[i], payloads[i], i+1, want[i])
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: everything survives, the LSN clock continues.
	l2 := openT(t, path)
	if st := l2.Stats(); st.Records != 3 || st.TornBytes != 0 || st.LastLSN != 3 {
		t.Fatalf("reopen stats = %+v", st)
	}
	if lsn := appendT(t, l2, "delta"); lsn != 4 {
		t.Fatalf("append after reopen: lsn = %d, want 4", lsn)
	}
}

func TestCRCRejection(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l := openT(t, path)
	appendT(t, l, "first record")
	appendT(t, l, "second record")
	size := l.Size()
	l.Close()

	// Flip one payload byte of the second record; recovery must keep
	// exactly the first.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[size-1] ^= 0x01
	if err := os.WriteFile(path, data, 0o666); err != nil {
		t.Fatal(err)
	}
	l2 := openT(t, path)
	st := l2.Stats()
	if st.Records != 1 || st.TornBytes == 0 {
		t.Fatalf("after corruption: stats = %+v, want 1 record and a torn tail", st)
	}
	if _, payloads := collect(t, l2); len(payloads) != 1 || payloads[0] != "first record" {
		t.Fatalf("after corruption: replayed %q", payloads)
	}
	// The torn tail was physically truncated: appends land cleanly.
	appendT(t, l2, "third record")
	_, payloads := collect(t, l2)
	if len(payloads) != 2 || payloads[1] != "third record" {
		t.Fatalf("append after recovery: replayed %q", payloads)
	}
}

func TestTornTailTruncation(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l := openT(t, path)
	boundaries := []int64{l.Size()}
	for i := 0; i < 5; i++ {
		appendT(t, l, fmt.Sprintf("record-%d with some padding", i))
		boundaries = append(boundaries, l.Size())
	}
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	l.Close()

	// Cut the file at every byte offset: recovery must always keep the
	// complete-record prefix and nothing else.
	for cut := int64(0); cut <= int64(len(full)); cut++ {
		if err := os.WriteFile(path, full[:cut], 0o666); err != nil {
			t.Fatal(err)
		}
		l2, err := Open(path, Options{})
		if err != nil {
			t.Fatalf("cut at %d: Open: %v", cut, err)
		}
		wantRecords := 0
		for i := 1; i < len(boundaries); i++ {
			if boundaries[i] <= cut {
				wantRecords = i
			}
		}
		if st := l2.Stats(); st.Records != wantRecords {
			t.Fatalf("cut at %d: recovered %d records, want %d (stats %+v)", cut, st.Records, wantRecords, st)
		}
		lsns, _ := collect(t, l2)
		if len(lsns) != wantRecords {
			t.Fatalf("cut at %d: replayed %d records, want %d", cut, len(lsns), wantRecords)
		}
		l2.Close()
	}
}

func TestTruncateThroughKeepsTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l := openT(t, path)
	for i := 1; i <= 6; i++ {
		appendT(t, l, fmt.Sprintf("r%d", i))
	}
	if err := l.TruncateThrough(4); err != nil {
		t.Fatal(err)
	}
	lsns, payloads := collect(t, l)
	if len(lsns) != 2 || lsns[0] != 5 || lsns[1] != 6 || payloads[0] != "r5" || payloads[1] != "r6" {
		t.Fatalf("after TruncateThrough(4): (%v, %q)", lsns, payloads)
	}
	// The LSN clock is unaffected: the next record is 7.
	if lsn := appendT(t, l, "r7"); lsn != 7 {
		t.Fatalf("append after truncate: lsn = %d, want 7", lsn)
	}
	l.Close()
	// And the rewrite is a real file others can reopen.
	l2 := openT(t, path)
	if st := l2.Stats(); st.Records != 3 || st.LastLSN != 7 {
		t.Fatalf("reopen after truncate: stats = %+v", st)
	}
}

func TestResetEmptiesLogAndKeepsClock(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l := openT(t, path)
	appendT(t, l, "a")
	appendT(t, l, "b")
	if err := l.Reset(); err != nil {
		t.Fatal(err)
	}
	if s := l.Size(); s != headerSize {
		t.Fatalf("size after Reset = %d, want %d", s, headerSize)
	}
	if lsn := appendT(t, l, "c"); lsn != 3 {
		t.Fatalf("lsn after Reset = %d, want 3", lsn)
	}
}

func TestEnsureLSN(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l := openT(t, path)
	l.EnsureLSN(41)
	if lsn := appendT(t, l, "x"); lsn != 42 {
		t.Fatalf("lsn after EnsureLSN(41) = %d, want 42", lsn)
	}
	l.EnsureLSN(10) // never moves backwards
	if lsn := appendT(t, l, "y"); lsn != 43 {
		t.Fatalf("lsn = %d, want 43", lsn)
	}
}

func TestDamagedHeaderResetsToEmpty(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l := openT(t, path)
	appendT(t, l, "doomed")
	l.Close()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[0] ^= 0xff
	if err := os.WriteFile(path, data, 0o666); err != nil {
		t.Fatal(err)
	}
	l2 := openT(t, path)
	st := l2.Stats()
	if st.Records != 0 || st.TornBytes != int64(len(data)) {
		t.Fatalf("damaged header: stats = %+v", st)
	}
	if lsn := appendT(t, l2, "fresh"); lsn != 1 {
		t.Fatalf("lsn on reset log = %d, want 1", lsn)
	}
}

func TestAppendAfterCloseFails(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l := openT(t, path)
	l.Close()
	if _, err := l.Append([]byte("late")); err == nil {
		t.Fatal("Append after Close succeeded")
	}
	if err := l.Replay(func(uint64, []byte) error { return nil }); err == nil {
		t.Fatal("Replay after Close succeeded")
	}
}

func TestReplayAbortsOnCallbackError(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l := openT(t, path)
	appendT(t, l, "one")
	appendT(t, l, "two")
	wantErr := fmt.Errorf("stop here")
	seen := 0
	err := l.Replay(func(uint64, []byte) error {
		seen++
		return wantErr
	})
	if err == nil || seen != 1 {
		t.Fatalf("Replay: err=%v after %d records, want the callback error after 1", err, seen)
	}
}

func TestNoSyncOptionStillFramesCorrectly(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l, err := Open(path, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	for i := 0; i < 10; i++ {
		fmt.Fprintf(&want, "p%d;", i)
		if _, err := l.Append([]byte(fmt.Sprintf("p%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	var got bytes.Buffer
	if err := l.Replay(func(_ uint64, p []byte) error {
		got.Write(p)
		got.WriteByte(';')
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if got.String() != want.String() {
		t.Fatalf("replay = %q, want %q", got.String(), want.String())
	}
	l.Close()
}
