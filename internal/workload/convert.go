package workload

import (
	"fmt"

	"repro/internal/chronon"
	"repro/internal/core"
	"repro/internal/cube"
	"repro/internal/tuplestamp"
	"repro/internal/value"
)

// ToCube materializes an HRDM relation as the 3-D cube representation:
// one row per (object, chronon) over the relation's clock, with
// EXISTS? = false in lifespan gaps. Tuples with an undefined non-key
// value at an alive chronon are recorded with the zero value of the
// domain (the cube has no per-attribute lifespans — precisely the
// flexibility it lacks).
func ToCube(r *core.Relation, clock chronon.Interval) (*cube.Relation, error) {
	hs := r.Scheme()
	s := &cube.Scheme{Name: hs.Name, NumKey: len(hs.Key)}
	// Key attributes first (cube keys are leading columns).
	var order []string
	for _, k := range hs.Key {
		order = append(order, k)
	}
	for _, a := range hs.Attrs {
		if !hs.IsKey(a.Name) {
			order = append(order, a.Name)
		}
	}
	for _, n := range order {
		a, _ := hs.Attr(n)
		s.Attrs = append(s.Attrs, a.Name)
		s.Doms = append(s.Doms, a.Domain)
	}
	out := cube.NewRelation(s, clock)
	for _, t := range r.Tuples() {
		var err error
		t.Lifespan().Each(func(tm chronon.Time) bool {
			if !clock.Contains(tm) {
				err = fmt.Errorf("workload: tuple alive at %v outside clock %v", tm, clock)
				return false
			}
			vals := make([]value.Value, len(order))
			for i, n := range order {
				v, ok := t.At(n, tm)
				if !ok {
					v = zeroOf(s.Doms[i])
				}
				vals[i] = v
			}
			err = out.RecordState(tm, vals)
			return err == nil
		})
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// ToTupleStamp materializes an HRDM relation as tuple-timestamped
// versions: for each tuple, its lifespan is partitioned into maximal
// intervals on which every attribute is constant, and each piece becomes
// one full-width version — the per-change redundancy of the
// representation.
func ToTupleStamp(r *core.Relation) (*tuplestamp.Relation, error) {
	hs := r.Scheme()
	s := &tuplestamp.Scheme{Name: hs.Name, NumKey: len(hs.Key)}
	var order []string
	for _, k := range hs.Key {
		order = append(order, k)
	}
	for _, a := range hs.Attrs {
		if !hs.IsKey(a.Name) {
			order = append(order, a.Name)
		}
	}
	for _, n := range order {
		a, _ := hs.Attr(n)
		s.Attrs = append(s.Attrs, a.Name)
		s.Doms = append(s.Doms, a.Domain)
	}
	out := tuplestamp.NewRelation(s)
	for _, t := range r.Tuples() {
		// Change points: starts of every attribute's steps plus lifespan
		// interval starts.
		breaks := map[chronon.Time]bool{}
		for _, iv := range t.Lifespan().Intervals() {
			breaks[iv.Lo] = true
		}
		for _, n := range order {
			t.Value(n).Steps(func(iv chronon.Interval, _ value.Value) bool {
				breaks[iv.Lo] = true
				return true
			})
		}
		for _, iv := range t.Lifespan().Intervals() {
			from := iv.Lo
			for from <= iv.Hi {
				// Find the next break strictly after from within iv.
				to := iv.Hi
				for b := range breaks {
					if b > from && b <= to {
						to = b - 1
					}
				}
				vals := make([]value.Value, len(order))
				for i, n := range order {
					v, ok := t.At(n, from)
					if !ok {
						v = zeroOf(s.Doms[i])
					}
					vals[i] = v
				}
				if err := out.Append(from, to, vals); err != nil {
					return nil, err
				}
				from = to + 1
			}
		}
	}
	return out, nil
}

func zeroOf(d value.Domain) value.Value {
	switch d.Kind {
	case value.KindInt:
		return value.Int(0)
	case value.KindFloat:
		return value.Float(0)
	case value.KindString:
		return value.String_("")
	case value.KindBool:
		return value.Bool(false)
	case value.KindTime:
		return value.TimeVal(0)
	}
	return value.Int(0)
}
