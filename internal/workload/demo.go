package workload

import (
	"repro/internal/core"
	"repro/internal/lifespan"
	"repro/internal/schema"
	"repro/internal/storage"
	"repro/internal/value"
)

// Demo assembles the demo database every entry point shares (CLI shell,
// server without a store, examples): the paper's EMP example plus a
// DEPTREL companion, workload-generated STOCK, and a small SHIP
// relation with a time-valued attribute for TIME-JOIN demos.
func Demo() *storage.Store {
	st := storage.NewStore()

	full := lifespan.Interval(0, 99)
	es := schema.MustNew("EMP", []string{"NAME"},
		schema.Attribute{Name: "NAME", Domain: value.Strings, Lifespan: full},
		schema.Attribute{Name: "SAL", Domain: value.Ints, Lifespan: full, Interp: "step"},
		schema.Attribute{Name: "DEPT", Domain: value.Strings, Lifespan: full, Interp: "step"},
	)
	emp := core.NewRelation(es)
	emp.MustInsert(core.NewTupleBuilder(es, lifespan.Interval(0, 9)).
		Key("NAME", value.String_("John")).
		Set("SAL", 0, 4, value.Int(30000)).
		Set("SAL", 5, 9, value.Int(34000)).
		Set("DEPT", 0, 9, value.String_("Toys")).
		MustBuild())
	emp.MustInsert(core.NewTupleBuilder(es, lifespan.Interval(3, 19)).
		Key("NAME", value.String_("Mary")).
		Set("SAL", 3, 19, value.Int(40000)).
		Set("DEPT", 3, 9, value.String_("Shoes")).
		Set("DEPT", 10, 19, value.String_("Books")).
		MustBuild())
	emp.MustInsert(core.NewTupleBuilder(es, lifespan.MustParse("{[0,3],[8,14]}")).
		Key("NAME", value.String_("Ahmed")).
		Set("SAL", 0, 3, value.Int(30000)).
		Set("SAL", 8, 14, value.Int(31000)).
		Set("DEPT", 0, 3, value.String_("Toys")).
		Set("DEPT", 8, 14, value.String_("Books")).
		MustBuild())
	st.Put(emp)

	ds := schema.MustNew("DEPTREL", []string{"DNAME"},
		schema.Attribute{Name: "DNAME", Domain: value.Strings, Lifespan: full},
		schema.Attribute{Name: "FLOOR", Domain: value.Ints, Lifespan: full, Interp: "step"},
	)
	dept := core.NewRelation(ds)
	for i, n := range []string{"Toys", "Shoes", "Books"} {
		dept.MustInsert(core.NewTupleBuilder(ds, lifespan.Interval(0, 19)).
			Key("DNAME", value.String_(n)).
			Set("FLOOR", 0, 19, value.Int(int64(i+1))).
			MustBuild())
	}
	st.Put(dept)

	st.Put(Stock(StockConfig{
		NumStocks: 5, HistoryLen: 60, VolumeGapLo: 0.4, VolumeGapHi: 0.7, Seed: 42,
	}))

	ss := schema.MustNew("SHIP", []string{"ID"},
		schema.Attribute{Name: "ID", Domain: value.Ints, Lifespan: full},
		schema.Attribute{Name: "SHIPDATE", Domain: value.Times, Lifespan: full},
	)
	ship := core.NewRelation(ss)
	ship.MustInsert(core.NewTupleBuilder(ss, lifespan.Interval(0, 19)).
		Key("ID", value.Int(1)).
		Set("SHIPDATE", 0, 19, value.TimeVal(7)).
		MustBuild())
	ship.MustInsert(core.NewTupleBuilder(ss, lifespan.Interval(5, 19)).
		Key("ID", value.Int(2)).
		Set("SHIPDATE", 5, 12, value.TimeVal(9)).
		Set("SHIPDATE", 13, 19, value.TimeVal(15)).
		MustBuild())
	st.Put(ship)
	return st
}
