package workload

import "testing"

// TestDemo: the shared demo database (CLI shell, server default store)
// carries all four relations with data in them.
func TestDemo(t *testing.T) {
	st := Demo()
	want := map[string]int{"EMP": 3, "DEPTREL": 3, "STOCK": 5, "SHIP": 2}
	for name, n := range want {
		r, ok := st.Get(name)
		if !ok {
			t.Fatalf("demo store lacks %s", name)
		}
		if got := r.Cardinality(); got != n {
			t.Fatalf("%s cardinality = %d, want %d", name, got, n)
		}
	}
}
