// Package workload generates deterministic synthetic histories for the
// examples, tests and experiments. The paper has no machine experiments;
// these generators model its own motivating domains — personnel histories
// with hire/fire/rehire ("reincarnation", Section 1), stock-market data
// with an evolving schema (Figure 6), and student/course enrollments with
// temporal referential integrity ("a student can only take a course at
// time t if both the student and the course exist at time t").
package workload
