package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/chronon"
	"repro/internal/core"
	"repro/internal/lifespan"
	"repro/internal/schema"
	"repro/internal/value"
)

// WideConfig parameterizes the wide-schema generator used by the storage
// experiment (E10). The paper's case for attribute-level timestamping
// ([Clifford 85]: "more user control of the different temporal properties
// of individual attributes") rests on attributes changing at different
// rates: under tuple timestamping, one fast-changing attribute forces the
// whole wide tuple to be re-stored at every change, while HRDM re-stores
// only the changed attribute. Wide generates exactly that shape:
// NumAttrs integer attributes where attribute i changes every
// BaseChange·2^i chronons, so V0 churns while the tail is near-constant.
type WideConfig struct {
	NumObjects int
	HistoryLen int
	NumAttrs   int
	BaseChange int
	Seed       int64
}

// DefaultWide is the configuration used by E10's wide rows.
func DefaultWide() WideConfig {
	return WideConfig{NumObjects: 100, HistoryLen: 400, NumAttrs: 8, BaseChange: 5, Seed: 21}
}

// WideScheme builds the scheme: OID (string key) plus V0..V{n-1}.
func WideScheme(cfg WideConfig) *schema.Scheme {
	full := lifespan.Interval(0, chronon.Time(cfg.HistoryLen-1))
	attrs := []schema.Attribute{
		{Name: "OID", Domain: value.Strings, Lifespan: full},
	}
	for i := 0; i < cfg.NumAttrs; i++ {
		attrs = append(attrs, schema.Attribute{
			Name: fmt.Sprintf("V%d", i), Domain: value.Ints, Lifespan: full, Interp: "step",
		})
	}
	return schema.MustNew("WIDE", []string{"OID"}, attrs...)
}

// Wide generates the wide relation: every object spans the whole clock;
// attribute V_i is re-randomized every BaseChange·2^i chronons.
func Wide(cfg WideConfig) *core.Relation {
	rng := rand.New(rand.NewSource(cfg.Seed))
	s := WideScheme(cfg)
	end := chronon.Time(cfg.HistoryLen - 1)
	full := lifespan.Interval(0, end)
	r := core.NewRelation(s)
	for o := 0; o < cfg.NumObjects; o++ {
		b := core.NewTupleBuilder(s, full)
		b.Key("OID", value.String_(fmt.Sprintf("obj%05d", o)))
		period := cfg.BaseChange
		for i := 0; i < cfg.NumAttrs; i++ {
			name := fmt.Sprintf("V%d", i)
			var t chronon.Time
			for t <= end {
				hi := t + chronon.Time(period) - 1
				if hi > end {
					hi = end
				}
				b.Set(name, t, hi, value.Int(rng.Int63n(1_000_000)))
				t = hi + 1
			}
			if period < cfg.HistoryLen {
				period *= 2
			}
		}
		r.MustInsert(b.MustBuild())
	}
	return r
}
