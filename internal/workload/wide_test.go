package workload

import (
	"fmt"
	"testing"

	"repro/internal/storage"
)

func TestWideShape(t *testing.T) {
	cfg := DefaultWide()
	r := Wide(cfg)
	if r.Cardinality() != cfg.NumObjects {
		t.Fatalf("cardinality = %d", r.Cardinality())
	}
	s := r.Scheme()
	if len(s.Attrs) != cfg.NumAttrs+1 {
		t.Fatalf("attrs = %d, want %d", len(s.Attrs), cfg.NumAttrs+1)
	}
	// Change-rate gradient: earlier attributes store more steps.
	tp := r.Tuples()[0]
	prev := -1
	for i := 0; i < cfg.NumAttrs; i++ {
		steps := tp.Value(fmt.Sprintf("V%d", i)).NumSteps()
		if prev >= 0 && steps > prev {
			t.Errorf("V%d has %d steps, more than V%d's %d — gradient must be non-increasing",
				i, steps, i-1, prev)
		}
		prev = steps
	}
	// V0 must genuinely churn relative to the tail.
	hot := tp.Value("V0").NumSteps()
	cold := tp.Value(fmt.Sprintf("V%d", cfg.NumAttrs-1)).NumSteps()
	if hot < 4*cold {
		t.Errorf("hot attribute (%d steps) should far exceed cold (%d)", hot, cold)
	}
}

func TestWideDeterministic(t *testing.T) {
	cfg := DefaultWide()
	if !Wide(cfg).Equal(Wide(cfg)) {
		t.Error("same seed must reproduce the relation")
	}
}

func TestWideStorageMonotoneInWidth(t *testing.T) {
	// The paper's E10 shape at the workload level: tuplestamp bytes grow
	// superlinearly in width relative to HRDM bytes.
	ratio := func(width int) float64 {
		cfg := WideConfig{NumObjects: 20, HistoryLen: 100, NumAttrs: width, BaseChange: 5, Seed: 3}
		r := Wide(cfg)
		ts, err := ToTupleStamp(r)
		if err != nil {
			t.Fatal(err)
		}
		return float64(ts.SizeBytes()) / float64(storage.SizeBytes(r))
	}
	if !(ratio(12) > ratio(3)) {
		t.Errorf("ts/HRDM ratio must grow with width: %f vs %f", ratio(12), ratio(3))
	}
}
