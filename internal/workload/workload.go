package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/chronon"
	"repro/internal/core"
	"repro/internal/lifespan"
	"repro/internal/schema"
	"repro/internal/value"
)

// PersonnelConfig parameterizes the personnel-history generator.
type PersonnelConfig struct {
	// NumEmployees is the number of distinct employee objects.
	NumEmployees int
	// HistoryLen is the length of the database clock [0, HistoryLen-1].
	HistoryLen int
	// ChangeEvery is the mean number of chronons between salary/department
	// changes; larger means quieter histories.
	ChangeEvery int
	// ReincarnationProb is the probability (0..1) that a fired employee is
	// re-hired later, giving a gapped lifespan.
	ReincarnationProb float64
	// MaxTenure bounds the length of each employment interval. Zero means
	// HistoryLen/2 (the historical default). Setting it much smaller than
	// HistoryLen yields sparse histories — many short-lived objects on a
	// long clock — the shape that exercises lifespan interval indexes.
	MaxTenure int
	// Seed makes the generator deterministic.
	Seed int64
}

// DefaultPersonnel is a moderate workload used by examples.
func DefaultPersonnel() PersonnelConfig {
	return PersonnelConfig{NumEmployees: 50, HistoryLen: 200, ChangeEvery: 20, ReincarnationProb: 0.3, Seed: 1}
}

var departments = []string{"Toys", "Shoes", "Books", "Tools", "Music"}

// PersonnelScheme returns the EMP scheme over [0, historyLen-1]:
// NAME (key), SAL (int, step-interpolated), DEPT (string, step).
func PersonnelScheme(historyLen int) *schema.Scheme {
	full := lifespan.Interval(0, chronon.Time(historyLen-1))
	return schema.MustNew("EMP", []string{"NAME"},
		schema.Attribute{Name: "NAME", Domain: value.Strings, Lifespan: full},
		schema.Attribute{Name: "SAL", Domain: value.Ints, Lifespan: full, Interp: "step"},
		schema.Attribute{Name: "DEPT", Domain: value.Strings, Lifespan: full, Interp: "step"},
	)
}

// Personnel generates the personnel history relation.
func Personnel(cfg PersonnelConfig) *core.Relation {
	rng := rand.New(rand.NewSource(cfg.Seed))
	s := PersonnelScheme(cfg.HistoryLen)
	r := core.NewRelation(s)
	for i := 0; i < cfg.NumEmployees; i++ {
		name := fmt.Sprintf("emp%04d", i)
		var ls lifespan.Lifespan
		if cfg.MaxTenure > 0 {
			ls = genTenuredLifespan(rng, cfg.HistoryLen, cfg.MaxTenure, cfg.ReincarnationProb)
		} else {
			ls = genLifespan(rng, cfg.HistoryLen, cfg.ReincarnationProb)
		}
		b := core.NewTupleBuilder(s, ls)
		b.Key("NAME", value.String_(name))
		sal := int64(25000 + rng.Intn(20)*1000)
		dept := departments[rng.Intn(len(departments))]
		for _, iv := range ls.Intervals() {
			t := iv.Lo
			for t <= iv.Hi {
				span := 1 + rng.Intn(2*cfg.ChangeEvery)
				end := t + chronon.Time(span) - 1
				if end > iv.Hi {
					end = iv.Hi
				}
				b.Set("SAL", t, end, value.Int(sal))
				b.Set("DEPT", t, end, value.String_(dept))
				// Next segment changes salary and sometimes department.
				sal += int64(rng.Intn(4000))
				if rng.Intn(3) == 0 {
					dept = departments[rng.Intn(len(departments))]
				}
				t = end + 1
			}
		}
		r.MustInsert(b.MustBuild())
	}
	return r
}

// genLifespan produces an employment lifespan within [0,historyLen-1]:
// one interval, possibly followed by a re-hire interval after a gap.
func genLifespan(rng *rand.Rand, historyLen int, rehireProb float64) lifespan.Lifespan {
	h := chronon.Time(historyLen)
	lo := chronon.Time(rng.Intn(historyLen / 2))
	hi := lo + chronon.Time(1+rng.Intn(historyLen/2))
	if hi >= h {
		hi = h - 1
	}
	ls := lifespan.Interval(lo, hi)
	if rng.Float64() < rehireProb && hi+3 < h-1 {
		lo2 := hi + 2 + chronon.Time(rng.Intn(int(h-hi-2)))
		if lo2 < h {
			hi2 := lo2 + chronon.Time(rng.Intn(int(h-lo2)))
			if hi2 >= h {
				hi2 = h - 1
			}
			ls = ls.Union(lifespan.Interval(lo2, hi2))
		}
	}
	return ls
}

// genTenuredLifespan is genLifespan with every employment interval's
// length bounded by maxTenure, for sparse histories: hires start
// anywhere on the clock (not just its first half) and end within
// tenure, so a short query window touches few objects.
func genTenuredLifespan(rng *rand.Rand, historyLen, maxTenure int, rehireProb float64) lifespan.Lifespan {
	h := chronon.Time(historyLen)
	lo := chronon.Time(rng.Intn(historyLen))
	hi := lo + chronon.Time(rng.Intn(maxTenure)) // inclusive length 1..maxTenure
	if hi >= h {
		hi = h - 1
	}
	ls := lifespan.Interval(lo, hi)
	if rng.Float64() < rehireProb && hi+3 < h-1 {
		lo2 := hi + 2 + chronon.Time(rng.Intn(int(h-hi-2)))
		if lo2 < h {
			span := int(h - lo2)
			if span > maxTenure {
				span = maxTenure
			}
			hi2 := lo2 + chronon.Time(rng.Intn(span))
			if hi2 >= h {
				hi2 = h - 1
			}
			ls = ls.Union(lifespan.Interval(lo2, hi2))
		}
	}
	return ls
}

// StockConfig parameterizes the stock-market generator (Figure 6's
// domain: an evolving schema whose VOLUME attribute has a gapped
// lifespan, plus a time-valued EX_DIV attribute for dynamic TIME-SLICE
// and TIME-JOIN).
type StockConfig struct {
	NumStocks  int
	HistoryLen int
	// VolumeGap is the [lo,hi] fraction pair of the clock during which
	// the VOLUME attribute was dropped from the schema.
	VolumeGapLo, VolumeGapHi float64
	Seed                     int64
}

// DefaultStock is a moderate stock workload.
func DefaultStock() StockConfig {
	return StockConfig{NumStocks: 20, HistoryLen: 100, VolumeGapLo: 0.4, VolumeGapHi: 0.7, Seed: 2}
}

// StockScheme returns the STOCK scheme with the Figure 6 evolving VOLUME
// attribute: ALS(VOLUME) = [0,gapLo-1] ∪ [gapHi+1,end].
func StockScheme(cfg StockConfig) *schema.Scheme {
	end := chronon.Time(cfg.HistoryLen - 1)
	full := lifespan.Interval(0, end)
	gapLo := chronon.Time(float64(cfg.HistoryLen) * cfg.VolumeGapLo)
	gapHi := chronon.Time(float64(cfg.HistoryLen) * cfg.VolumeGapHi)
	volLS := lifespan.Interval(0, gapLo-1).Union(lifespan.Interval(gapHi+1, end))
	return schema.MustNew("STOCK", []string{"TICKER"},
		schema.Attribute{Name: "TICKER", Domain: value.Strings, Lifespan: full},
		schema.Attribute{Name: "PRICE", Domain: value.Floats, Lifespan: full, Interp: "linear"},
		schema.Attribute{Name: "VOLUME", Domain: value.Ints, Lifespan: volLS, Interp: "discrete"},
		schema.Attribute{Name: "EX_DIV", Domain: value.Times, Lifespan: full, Interp: "step"},
	)
}

// Stock generates the stock-market relation: every stock lives the whole
// clock; PRICE is a random walk re-sampled every few chronons; VOLUME is
// recorded only where its attribute lifespan permits; EX_DIV maps each
// chronon to the stock's next ex-dividend date (a TT attribute).
func Stock(cfg StockConfig) *core.Relation {
	rng := rand.New(rand.NewSource(cfg.Seed))
	s := StockScheme(cfg)
	volLS := s.ALS("VOLUME")
	end := chronon.Time(cfg.HistoryLen - 1)
	r := core.NewRelation(s)
	for i := 0; i < cfg.NumStocks; i++ {
		full := lifespan.Interval(0, end)
		b := core.NewTupleBuilder(s, full)
		b.Key("TICKER", value.String_(fmt.Sprintf("TCK%03d", i)))
		price := 50.0 + rng.Float64()*100
		var t chronon.Time
		for t <= end {
			seg := chronon.Time(1 + rng.Intn(5))
			hi := t + seg - 1
			if hi > end {
				hi = end
			}
			b.Set("PRICE", t, hi, value.Float(price))
			price += rng.NormFloat64() * 2
			if price < 1 {
				price = 1
			}
			t = hi + 1
		}
		for _, iv := range volLS.Intervals() {
			for t := iv.Lo; t <= iv.Hi; t += 4 {
				hi := t + 3
				if hi > iv.Hi {
					hi = iv.Hi
				}
				b.Set("VOLUME", t, hi, value.Int(int64(1000+rng.Intn(100000))))
			}
		}
		// Ex-dividend dates every ~25 chronons; EX_DIV points forward.
		div := chronon.Time(10 + rng.Intn(20))
		var from chronon.Time
		for from <= end {
			hi := div
			if hi > end {
				hi = end
			}
			b.Set("EX_DIV", from, hi, value.TimeVal(div))
			from = hi + 1
			div += chronon.Time(20 + rng.Intn(10))
		}
		r.MustInsert(b.MustBuild())
	}
	return r
}

// EnrollmentConfig parameterizes the student/course generator.
type EnrollmentConfig struct {
	NumStudents, NumCourses, NumEnrollments int
	HistoryLen                              int
	Seed                                    int64
}

// DefaultEnrollment is a moderate enrollment workload.
func DefaultEnrollment() EnrollmentConfig {
	return EnrollmentConfig{NumStudents: 30, NumCourses: 10, NumEnrollments: 60, HistoryLen: 100, Seed: 3}
}

// Enrollment generates three relations — STUDENT(SNAME*, MAJOR),
// COURSE(CNAME*, ROOM), ENROLL(SNAME*, CNAME*) — such that every
// enrollment's lifespan lies within the intersection of its student's
// and course's lifespans (the paper's temporal referential integrity).
func Enrollment(cfg EnrollmentConfig) (students, courses, enrolls *core.Relation) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	end := chronon.Time(cfg.HistoryLen - 1)
	full := lifespan.Interval(0, end)

	ss := schema.MustNew("STUDENT", []string{"SNAME"},
		schema.Attribute{Name: "SNAME", Domain: value.Strings, Lifespan: full},
		schema.Attribute{Name: "MAJOR", Domain: value.Strings, Lifespan: full, Interp: "step"},
	)
	cs := schema.MustNew("COURSE", []string{"CNAME"},
		schema.Attribute{Name: "CNAME", Domain: value.Strings, Lifespan: full},
		schema.Attribute{Name: "ROOM", Domain: value.Ints, Lifespan: full, Interp: "step"},
	)
	es := schema.MustNew("ENROLL", []string{"SNAME", "CNAME"},
		schema.Attribute{Name: "SNAME", Domain: value.Strings, Lifespan: full},
		schema.Attribute{Name: "CNAME", Domain: value.Strings, Lifespan: full},
		schema.Attribute{Name: "GRADE", Domain: value.Ints, Lifespan: full, Interp: "discrete"},
	)

	students = core.NewRelation(ss)
	majors := []string{"IS", "CS", "Math", "Econ"}
	studentLS := make([]lifespan.Lifespan, cfg.NumStudents)
	for i := range studentLS {
		ls := genLifespan(rng, cfg.HistoryLen, 0.25) // drop-out and return
		studentLS[i] = ls
		b := core.NewTupleBuilder(ss, ls)
		b.Key("SNAME", value.String_(fmt.Sprintf("stu%03d", i)))
		for _, iv := range ls.Intervals() {
			b.Set("MAJOR", iv.Lo, iv.Hi, value.String_(majors[rng.Intn(len(majors))]))
		}
		students.MustInsert(b.MustBuild())
	}

	courses = core.NewRelation(cs)
	courseLS := make([]lifespan.Lifespan, cfg.NumCourses)
	for i := range courseLS {
		ls := genLifespan(rng, cfg.HistoryLen, 0.1)
		courseLS[i] = ls
		b := core.NewTupleBuilder(cs, ls)
		b.Key("CNAME", value.String_(fmt.Sprintf("crs%02d", i)))
		for _, iv := range ls.Intervals() {
			b.Set("ROOM", iv.Lo, iv.Hi, value.Int(int64(100+rng.Intn(50))))
		}
		courses.MustInsert(b.MustBuild())
	}

	enrolls = core.NewRelation(es)
	for n := 0; n < cfg.NumEnrollments; n++ {
		si := rng.Intn(cfg.NumStudents)
		ci := rng.Intn(cfg.NumCourses)
		joint := studentLS[si].Intersect(courseLS[ci])
		if joint.IsEmpty() {
			continue
		}
		// Enroll over a sub-interval of the joint lifespan.
		ivs := joint.Intervals()
		iv := ivs[rng.Intn(len(ivs))]
		lo := iv.Lo + chronon.Time(rng.Intn(int(iv.Duration())))
		hi := lo + chronon.Time(rng.Intn(int(iv.Hi-lo)+1))
		els := lifespan.Interval(lo, hi)
		b := core.NewTupleBuilder(es, els)
		b.Key("SNAME", value.String_(fmt.Sprintf("stu%03d", si)))
		b.Key("CNAME", value.String_(fmt.Sprintf("crs%02d", ci)))
		b.SetAt("GRADE", hi, value.Int(int64(60+rng.Intn(40))))
		t := b.MustBuild()
		if err := enrolls.Insert(t); err != nil {
			continue // duplicate (student, course) pair; skip
		}
	}
	return students, courses, enrolls
}
