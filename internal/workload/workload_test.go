package workload

import (
	"testing"

	"repro/internal/chronon"
	"repro/internal/core"
	"repro/internal/lifespan"
	"repro/internal/value"
)

func TestPersonnelDeterministic(t *testing.T) {
	cfg := DefaultPersonnel()
	a := Personnel(cfg)
	b := Personnel(cfg)
	if !a.Equal(b) {
		t.Error("same seed must generate the same relation")
	}
	cfg2 := cfg
	cfg2.Seed = 99
	c := Personnel(cfg2)
	if a.Equal(c) {
		t.Error("different seed should generate a different relation")
	}
}

func TestPersonnelShape(t *testing.T) {
	cfg := PersonnelConfig{NumEmployees: 40, HistoryLen: 150, ChangeEvery: 10, ReincarnationProb: 1.0, Seed: 5}
	r := Personnel(cfg)
	if r.Cardinality() != 40 {
		t.Fatalf("cardinality = %d", r.Cardinality())
	}
	clock := chronon.NewInterval(0, 149)
	reincarnated := 0
	for _, tp := range r.Tuples() {
		ls := tp.Lifespan()
		if ls.IsEmpty() || ls.Min() < clock.Lo || ls.Max() > clock.Hi {
			t.Fatalf("lifespan %v escapes clock", ls)
		}
		if ls.NumIntervals() > 1 {
			reincarnated++
		}
		// SAL defined over the whole lifespan (step pieces tile it).
		if !tp.Value("SAL").Domain().Equal(ls) {
			t.Fatalf("SAL domain %v != lifespan %v", tp.Value("SAL").Domain(), ls)
		}
	}
	if reincarnated == 0 {
		t.Error("with prob 1.0 some employees must be re-hired")
	}
}

func TestStockShape(t *testing.T) {
	cfg := DefaultStock()
	r := Stock(cfg)
	if r.Cardinality() != cfg.NumStocks {
		t.Fatalf("cardinality = %d", r.Cardinality())
	}
	s := r.Scheme()
	if s.ALS("VOLUME").NumIntervals() != 2 {
		t.Errorf("VOLUME lifespan should have the Figure 6 gap: %v", s.ALS("VOLUME"))
	}
	for _, tp := range r.Tuples() {
		// VOLUME never defined in the schema gap.
		if !tp.Value("VOLUME").Domain().SubsetOf(s.ALS("VOLUME")) {
			t.Fatal("VOLUME defined outside its attribute lifespan")
		}
		// EX_DIV is time-valued and defined over the whole lifespan.
		if !tp.Value("EX_DIV").Domain().Equal(tp.Lifespan()) {
			t.Fatal("EX_DIV must cover the lifespan")
		}
		if _, err := tp.Value("EX_DIV").TimeImage(); err != nil {
			t.Fatalf("EX_DIV must be a TT function: %v", err)
		}
	}
	// Dynamic TIME-SLICE over EX_DIV works on the generated data.
	if _, err := core.TimesliceDynamic(r, "EX_DIV"); err != nil {
		t.Fatalf("dynamic timeslice: %v", err)
	}
}

func TestEnrollmentReferentialIntegrity(t *testing.T) {
	students, courses, enrolls := Enrollment(DefaultEnrollment())
	if students.Cardinality() == 0 || courses.Cardinality() == 0 || enrolls.Cardinality() == 0 {
		t.Fatal("generator produced empty relations")
	}
	for _, e := range enrolls.Tuples() {
		sname := e.KeyValue("SNAME").String()
		cname := e.KeyValue("CNAME").String()
		st, ok := students.Lookup(sname)
		if !ok {
			t.Fatalf("enrollment references unknown student %s", sname)
		}
		cr, ok := courses.Lookup(cname)
		if !ok {
			t.Fatalf("enrollment references unknown course %s", cname)
		}
		joint := st.Lifespan().Intersect(cr.Lifespan())
		if !e.Lifespan().SubsetOf(joint) {
			t.Fatalf("enrollment %s/%s lifespan %v escapes student∩course %v",
				sname, cname, e.Lifespan(), joint)
		}
	}
}

func TestToCube(t *testing.T) {
	cfg := PersonnelConfig{NumEmployees: 5, HistoryLen: 30, ChangeEvery: 5, ReincarnationProb: 0.5, Seed: 7}
	r := Personnel(cfg)
	clock := chronon.NewInterval(0, 29)
	c, err := ToCube(r, clock)
	if err != nil {
		t.Fatal(err)
	}
	if c.NumObjects() != 5 {
		t.Fatalf("cube objects = %d", c.NumObjects())
	}
	// Spot-check agreement: cube snapshot vs HRDM snapshot at several times.
	for _, tm := range []chronon.Time{0, 7, 15, 29} {
		snap, err := core.Snapshot(r, tm)
		if err != nil {
			t.Fatal(err)
		}
		rows := c.SnapshotAt(tm)
		if len(rows) != snap.Cardinality() {
			t.Errorf("at %v: cube has %d rows, HRDM snapshot %d", tm, len(rows), snap.Cardinality())
		}
	}
}

func TestToTupleStamp(t *testing.T) {
	cfg := PersonnelConfig{NumEmployees: 5, HistoryLen: 30, ChangeEvery: 5, ReincarnationProb: 0.5, Seed: 7}
	r := Personnel(cfg)
	ts, err := ToTupleStamp(r)
	if err != nil {
		t.Fatal(err)
	}
	if ts.NumObjects() != 5 {
		t.Fatalf("objects = %d", ts.NumObjects())
	}
	// Version values agree with the HRDM source at version starts and ends.
	for _, tp := range r.Tuples() {
		name := tp.KeyValue("NAME")
		vers := ts.KeyHistory(name)
		if len(vers) == 0 {
			t.Fatalf("no versions for %v", name)
		}
		if !ts.Lifespan(name).Equal(tp.Lifespan()) {
			t.Fatalf("lifespan mismatch for %v: %v vs %v", name, ts.Lifespan(name), tp.Lifespan())
		}
		for _, v := range vers {
			for _, at := range []chronon.Time{v.From, v.To} {
				want, ok := tp.At("SAL", at)
				if !ok {
					t.Fatalf("HRDM SAL undefined at %v inside version", at)
				}
				si := indexOf(ts.Scheme().Attrs, "SAL")
				if !v.Vals[si].Equal(want) {
					t.Fatalf("version SAL %v != HRDM %v at %v", v.Vals[si], want, at)
				}
			}
		}
	}
	// When-query agreement between representations.
	lsH, err := ts.When("SAL", value.GE, value.Int(40000))
	if err != nil {
		t.Fatal(err)
	}
	got, err := core.SelectWhen(r, core.Predicate{Attr: "SAL", Theta: value.GE, Const: value.Int(40000)}, lifespanAll())
	if err != nil {
		t.Fatal(err)
	}
	if !core.When(got).Equal(lsH) {
		t.Errorf("WHEN disagreement: HRDM %v vs tuplestamp %v", core.When(got), lsH)
	}
}

func indexOf(xs []string, x string) int {
	for i, s := range xs {
		if s == x {
			return i
		}
	}
	return -1
}

func lifespanAll() lifespan.Lifespan { return lifespan.All() }
